/**
 * @file
 * Statistical sampling tests: config parsing and scheduling math,
 * window-summary arithmetic (ratio-of-sums CPI, CI95), the
 * runWindow(0, m) == run(m) anchor that ties the sampled path to the
 * full detailed path, and the determinism guarantees the CI gate
 * relies on — sampled results identical across {serial, parallel}
 * window execution and across {memory, disk} trace tiers.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "harness/experiment.hh"
#include "harness/sampling.hh"
#include "sim/cmp.hh"
#include "sim/trace_store.hh"
#include "workloads/workload.hh"

namespace bfsim::harness {
namespace {

// ------------------------------------------------------------- config

TEST(SampleConfig, ParseAcceptsPeriodWarmupMeasure)
{
    SampleConfig config = SampleConfig::parse("200000:4000:8000");
    EXPECT_TRUE(config.enabled);
    EXPECT_EQ(config.periodOps, 200000u);
    EXPECT_EQ(config.warmupOps, 4000u);
    EXPECT_EQ(config.measureOps, 8000u);
    EXPECT_EQ(config.key(), "/sample:200000:4000:8000");
}

TEST(SampleConfig, ParseAcceptsCkptSuffix)
{
    SampleConfig config = SampleConfig::parse("200000:4000:8000:ckpt");
    EXPECT_TRUE(config.enabled);
    EXPECT_TRUE(config.ckptWarm);
    EXPECT_EQ(config.periodOps, 200000u);
    EXPECT_EQ(config.warmupOps, 4000u);
    EXPECT_EQ(config.measureOps, 8000u);
    // Checkpoint-restored and plain sampled runs never share a key.
    EXPECT_EQ(config.key(), "/sample:200000:4000:8000:ckpt");
}

TEST(SampleConfig, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(SampleConfig::parse(""), SimError);
    EXPECT_THROW(SampleConfig::parse("1000"), SimError);
    EXPECT_THROW(SampleConfig::parse("1000:10"), SimError);
    EXPECT_THROW(SampleConfig::parse("1000:10:20:30"), SimError);
    EXPECT_THROW(SampleConfig::parse("a:b:c"), SimError);
    EXPECT_THROW(SampleConfig::parse("1000:10:20x"), SimError);
    // Only the literal ":ckpt" suffix is accepted as a fourth field.
    EXPECT_THROW(SampleConfig::parse("1000:10:20:ckptx"), SimError);
    EXPECT_THROW(SampleConfig::parse("1000:10:20:"), SimError);
    // Zero measure region and window > period are semantic errors.
    EXPECT_THROW(SampleConfig::parse("1000:10:0"), SimError);
    EXPECT_THROW(SampleConfig::parse("100:90:20"), SimError);
}

TEST(SampleConfig, DisabledConfigHasEmptyKey)
{
    SampleConfig config;
    EXPECT_FALSE(config.enabled);
    EXPECT_EQ(config.key(), "");
}

// ----------------------------------------------------------- schedule

TEST(SampleSchedule, WindowsAtPeriodMultiplesWithinBudget)
{
    SampleConfig config = SampleConfig::parse("20000:1000:2000");
    std::vector<SampleWindow> windows = sampleSchedule(100000, config);
    ASSERT_EQ(windows.size(), 5u);
    for (std::size_t w = 0; w < windows.size(); ++w) {
        EXPECT_EQ(windows[w].begin, w * 20000u);
        EXPECT_EQ(windows[w].warmup, 1000u);
        EXPECT_EQ(windows[w].measure, 2000u);
        EXPECT_EQ(windows[w].end(), w * 20000u + 3000u);
    }
    // The last window must fit inside the budget entirely.
    EXPECT_LE(windows.back().end(), 100000u);
}

TEST(SampleSchedule, TinyBudgetDegeneratesToOneClampedWindow)
{
    SampleConfig config = SampleConfig::parse("20000:1000:2000");
    // Budget smaller than one window: measure what fits.
    std::vector<SampleWindow> windows = sampleSchedule(1500, config);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].begin, 0u);
    EXPECT_LE(windows[0].end(), 1500u);
    EXPECT_GT(windows[0].measure, 0u);

    // Disabled config or zero budget: no windows at all.
    EXPECT_TRUE(sampleSchedule(0, config).empty());
    EXPECT_TRUE(sampleSchedule(100000, SampleConfig{}).empty());
}

// ------------------------------------------------------------ summary

TEST(SummarizeWindows, RatioOfSumsCpiAndConfidenceInterval)
{
    SampleConfig config = SampleConfig::parse("100:10:20");
    std::vector<SampleWindow> schedule = sampleSchedule(300, config);
    ASSERT_EQ(schedule.size(), 3u);

    // Window CPIs 2.0, 3.0, 4.0 over equal instruction counts.
    std::vector<std::uint64_t> cycles{40, 60, 80};
    std::vector<std::uint64_t> insts{20, 20, 20};
    SampledStats stats = summarizeWindows(schedule, cycles, insts, 300);
    EXPECT_TRUE(stats.enabled);
    EXPECT_EQ(stats.windows, 3u);
    EXPECT_EQ(stats.measuredInstructions, 60u);
    EXPECT_EQ(stats.warmupInstructions, 30u);
    EXPECT_EQ(stats.budgetInstructions, 300u);
    EXPECT_DOUBLE_EQ(stats.cpi, 3.0);
    EXPECT_DOUBLE_EQ(stats.ipc, 1.0 / 3.0);
    // Sample stddev of {2,3,4} is 1.0; CI95 = 1.96 / sqrt(3).
    EXPECT_NEAR(stats.cpiCi95, 1.96 / std::sqrt(3.0), 1e-12);
}

// ----------------------- artifact byte surgery (checkpoint fallback)

std::vector<unsigned char>
readFileBytes(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.good()) << path;
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(file),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<unsigned char> &bytes)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(reinterpret_cast<const char *>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(file.good()) << path;
}

/** v2 trailer geometry (mirrors trace_store.cc / trace_store_test.cc). */
constexpr std::size_t artifactFooterBytes = 24;
constexpr std::size_t ckptSectionHeadBytes = 24;

std::uint32_t
fileGet32(const std::vector<unsigned char> &bytes, std::size_t offset)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(bytes[offset + i]) << (i * 8);
    return v;
}

std::uint64_t
fileGet64(const std::vector<unsigned char> &bytes, std::size_t offset)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[offset + i]) << (i * 8);
    return v;
}

/** File offset of the v2 checkpoint section (after the chunk index). */
std::size_t
checkpointSectionOffset(const std::vector<unsigned char> &bytes)
{
    std::size_t footer = bytes.size() - artifactFooterBytes;
    std::uint64_t index_offset = fileGet64(bytes, footer + 8);
    std::uint32_t chunk_count = fileGet32(bytes, footer + 4);
    return index_offset + 12 + std::size_t{chunk_count} * 8;
}

// ------------------------------------------- simulation-level fixture

class SamplingRunTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "bfsim_sampling/" +
              testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        std::filesystem::remove_all(dir);
        clearMemoCaches();
        clearTraceCache();
        setTraceCacheEnabled(true);
        sim::trace_store::setDirectory("");
        sim::trace_store::setCheckpointIntervalChunks(
            sim::trace_store::checkpointEveryChunks);
    }

    void
    TearDown() override
    {
        sim::trace_store::setDirectory("");
        sim::trace_store::setCheckpointIntervalChunks(
            sim::trace_store::checkpointEveryChunks);
        clearMemoCaches();
        clearTraceCache();
        setTraceCacheEnabled(true);
        std::filesystem::remove_all(dir);
    }

    /** Options for a sampled run: 5 windows over a 100k budget. */
    static RunOptions
    sampledOptions(unsigned jobs = 1)
    {
        RunOptions options;
        options.instructions = 100000;
        options.sample = SampleConfig::parse("20000:1000:2000");
        options.sample.jobs = jobs;
        return options;
    }

    /** sampledOptions in checkpoint-restored mode. */
    static RunOptions
    ckptOptions(unsigned jobs = 1)
    {
        RunOptions options = sampledOptions(jobs);
        options.sample.ckptWarm = true;
        return options;
    }

    std::string dir;
};

void
expectSameCoreStats(const sim::CoreStats &a, const sim::CoreStats &b)
{
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(sim::CoreStats)), 0);
}

// A zero-warmup window over the whole budget is exactly a full run:
// the anchor tying runWindow's delta arithmetic to run().
TEST_F(SamplingRunTest, ZeroWarmupWindowEqualsFullRun)
{
    const workloads::Workload &w = workloads::workloadByName("mcf");
    std::vector<sim::CoreConfig> cfgs{sim::CoreConfig{}};
    mem::HierarchyConfig hier;
    hier.numCores = 1;

    sim::Cmp full(cfgs, {&w.program}, hier);
    sim::CmpResult full_result = full.run(20000);

    sim::Cmp window(cfgs, {&w.program}, hier);
    sim::CmpResult window_result = window.runWindow(0, 20000);

    expectSameCoreStats(full_result.cores.at(0),
                        window_result.cores.at(0));
    EXPECT_EQ(std::memcmp(&full_result.memStats.at(0),
                          &window_result.memStats.at(0),
                          sizeof(mem::CoreMemStats)),
              0);
    EXPECT_EQ(full_result.totalRetired, window_result.totalRetired);
}

TEST_F(SamplingRunTest, SampledResultCarriesEstimate)
{
    SingleResult result =
        runSingle("mcf", "Bfetch", sampledOptions());
    EXPECT_TRUE(result.sampled.enabled);
    EXPECT_EQ(result.sampled.windows, 5u);
    EXPECT_EQ(result.sampled.measuredInstructions, 5u * 2000u);
    EXPECT_GT(result.sampled.cpi, 0.0);
    // The aggregated core stats cover exactly the measured regions, so
    // their IPC and the sampling estimate must agree.
    EXPECT_NEAR(result.sampled.ipc, result.core.ipc, 1e-12);
    EXPECT_EQ(result.core.instructions,
              result.sampled.measuredInstructions);
    // Sampled and full runs memoize under different keys.
    EXPECT_NE(sampledOptions().cacheKey(), RunOptions{}.cacheKey());
}

TEST_F(SamplingRunTest, SampledCpiIdenticalAcrossSerialAndParallel)
{
    SingleResult serial =
        runSingle("mcf", "Bfetch", sampledOptions(1));
    clearTraceCache();
    SingleResult parallel =
        runSingle("mcf", "Bfetch", sampledOptions(4));
    expectSameCoreStats(serial.core, parallel.core);
    EXPECT_DOUBLE_EQ(serial.sampled.cpi, parallel.sampled.cpi);
    EXPECT_DOUBLE_EQ(serial.sampled.cpiCi95, parallel.sampled.cpiCi95);
}

TEST_F(SamplingRunTest, SampledCpiIdenticalAcrossMemoryAndDiskTiers)
{
    // Memory tier: windows replay the shared in-process buffer.
    SingleResult memory =
        runSingle("mcf", "Bfetch", sampledOptions());

    // Disk tier: persist the captured trace, drop the in-memory cache,
    // and re-run — windows now decode a seekable v2 artifact.
    sim::trace_store::setDirectory(dir);
    clearTraceCache();
    runSingle("mcf", "None", sampledOptions());
    ASSERT_GE(persistTraceStore(), 1u);
    clearTraceCache();
    takeThreadCacheCounters();
    SingleResult disk =
        runSingle("mcf", "Bfetch", sampledOptions());
    ThreadCacheCounters counters = takeThreadCacheCounters();
    // One hit seeding the shared buffer plus one per window source
    // (each window opens its own seekable reader).
    EXPECT_GE(counters.traceDiskHits, 1u);
    EXPECT_EQ(counters.traceDiskMisses, 0u);
    EXPECT_EQ(counters.traceFallbacks, 0u);

    expectSameCoreStats(memory.core, disk.core);
    EXPECT_DOUBLE_EQ(memory.sampled.cpi, disk.sampled.cpi);
}

// ------------------------------------- checkpoint-restored windows

// All four determinism cells of checkpoint-restored mode: the core
// stats must memcmp-match across {serial, -j4} and {memory, disk}, and
// a corrupted checkpoint section must degrade to live capture without
// perturbing a single bit.

TEST_F(SamplingRunTest, CkptWindowsIdenticalAcrossSerialAndParallel)
{
    // Dense checkpoints (every chunk) so four of the five windows
    // restore from one.
    sim::trace_store::setCheckpointIntervalChunks(1);
    SingleResult serial = runSingle("mcf", "Bfetch", ckptOptions(1));
    clearTraceCache();
    clearMemoCaches();
    SingleResult parallel = runSingle("mcf", "Bfetch", ckptOptions(4));
    expectSameCoreStats(serial.core, parallel.core);
    EXPECT_DOUBLE_EQ(serial.sampled.cpi, parallel.sampled.cpi);
    EXPECT_DOUBLE_EQ(serial.sampled.cpiCi95, parallel.sampled.cpiCi95);
    EXPECT_EQ(serial.sampled.checkpointHits, 4u);
    EXPECT_EQ(parallel.sampled.checkpointHits, 4u);
    // Ckpt-warmed and cold sampled runs memoize under different keys.
    EXPECT_NE(ckptOptions().cacheKey(), sampledOptions().cacheKey());
}

TEST_F(SamplingRunTest, CkptWindowsIdenticalAcrossMemoryAndDiskTiers)
{
    sim::trace_store::setCheckpointIntervalChunks(1);
    // Memory tier: capture-time checkpoint records, prefix ops
    // materialised sequentially (the honest ff_instructions cost).
    SingleResult memory = runSingle("mcf", "Bfetch", ckptOptions());
    EXPECT_EQ(memory.sampled.checkpointHits, 4u);
    EXPECT_EQ(memory.sampled.ffSkippedOps, 0u);
    EXPECT_EQ(memory.sampled.ffInstructions,
              20000u + 40000u + 60000u + 80000u);

    // Disk tier: persist, drop all in-memory state, re-run from the v2
    // artifact's save-time records and chunk-index seeks.
    sim::trace_store::setDirectory(dir);
    clearTraceCache();
    clearMemoCaches();
    runSingle("mcf", "None", ckptOptions());
    ASSERT_GE(persistTraceStore(), 1u);
    clearTraceCache();
    clearMemoCaches();
    SingleResult disk = runSingle("mcf", "Bfetch", ckptOptions());

    expectSameCoreStats(memory.core, disk.core);
    EXPECT_DOUBLE_EQ(memory.sampled.cpi, disk.sampled.cpi);
    EXPECT_EQ(disk.sampled.checkpointHits, 4u);
    // Seekable windows skip every whole prefix chunk outright.
    EXPECT_GT(disk.sampled.ffSkippedOps, 0u);
    EXPECT_EQ(disk.sampled.ffInstructions, 0u);
}

TEST_F(SamplingRunTest, CorruptedCheckpointFallsBackBitIdentically)
{
    sim::trace_store::setCheckpointIntervalChunks(1);
    SingleResult reference = runSingle("mcf", "Bfetch", ckptOptions());
    ASSERT_GT(reference.sampled.checkpointHits, 0u);

    sim::trace_store::setDirectory(dir);
    clearTraceCache();
    clearMemoCaches();
    runSingle("mcf", "None", ckptOptions());
    ASSERT_GE(persistTraceStore(), 1u);

    // Flip one byte inside the first checkpoint's register image: the
    // whole artifact is rejected at open (no partially trusted
    // sections), so the run recaptures live — and must match the pure
    // memory-tier reference bit for bit, checkpoint warmup included.
    const workloads::Workload &w = workloads::workloadByName("mcf");
    auto key = sim::trace_store::makeKey("mcf", 100000, w.program);
    std::string path = sim::trace_store::artifactPath(key);
    std::vector<unsigned char> bytes = readFileBytes(path);
    std::size_t ckpt = checkpointSectionOffset(bytes);
    ASSERT_LT(ckpt + ckptSectionHeadBytes + 64, bytes.size());
    bytes[ckpt + ckptSectionHeadBytes + 40] ^= 0x04;
    writeFileBytes(path, bytes);

    clearTraceCache();
    clearMemoCaches();
    takeThreadCacheCounters();
    SingleResult fallback = runSingle("mcf", "Bfetch", ckptOptions());
    ThreadCacheCounters counters = takeThreadCacheCounters();
    EXPECT_GE(counters.traceDiskMisses, 1u);

    expectSameCoreStats(reference.core, fallback.core);
    EXPECT_DOUBLE_EQ(reference.sampled.cpi, fallback.sampled.cpi);
    EXPECT_EQ(fallback.sampled.checkpointHits,
              reference.sampled.checkpointHits);
    EXPECT_EQ(fallback.sampled.ffSkippedOps, 0u);
}

TEST_F(SamplingRunTest, SampledMixCarriesEstimateAndSpeedup)
{
    RunOptions options = sampledOptions(2);
    MixResult result = runMix({"mcf", "libquantum"},
                              "Bfetch", options);
    EXPECT_TRUE(result.sampled.enabled);
    EXPECT_EQ(result.sampled.windows, 5u);
    EXPECT_GT(result.sampled.cpi, 0.0);
    ASSERT_EQ(result.cores.size(), 2u);
    EXPECT_GT(result.cores[0].instructions, 0u);
    EXPECT_GT(result.cores[1].instructions, 0u);
    // Two cores, each ratio IPC_multi(BFetch)/IPC_single(None): near 1
    // per core, above when prefetching outruns contention. Bound it
    // loosely — this guards the arithmetic, not the microarchitecture.
    EXPECT_GT(result.weightedSpeedup, 0.5);
    EXPECT_LT(result.weightedSpeedup, 4.0);
}

} // namespace
} // namespace bfsim::harness
