/**
 * @file
 * Fig. 3 profiler tests: crafted programs with known register / EA
 * variation shapes must produce the expected CDF behaviour.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/profiler.hh"
#include "workloads/workload.hh"

namespace bfsim::sim {
namespace {

using isa::Assembler;
using isa::Program;

TEST(Profiler, StableBasePointerYieldsZeroRegisterDeltas)
{
    // Load off a base register that never changes.
    Assembler as;
    as.movi(isa::R1, 0x100000);
    as.movi(isa::R2, 0);
    as.label("top");
    as.load(isa::R3, isa::R1, 0);
    as.addi(isa::R2, isa::R2, 1);
    as.blt(isa::R2, isa::R4, "top"); // R4 == 0: loops via wrap... use jmp
    as.jmp("top");
    Program p = as.assemble();

    ProfileResult result = profileRegisterVariation(p, 50000);
    for (std::size_t d = 0; d < 3; ++d) {
        ASSERT_GT(result.registerDelta.byDepth[d].total(), 0u);
        EXPECT_DOUBLE_EQ(
            result.registerDelta.byDepth[d].cumulativeFraction(0), 1.0);
    }
}

TEST(Profiler, UnitStrideStreamHasSmallDeltasAtShallowDepth)
{
    // Base advances one block per basic block.
    Assembler as;
    as.movi(isa::R1, 0x100000);
    as.label("top");
    as.load(isa::R2, isa::R1, 0);
    as.addi(isa::R1, isa::R1, 64);
    as.jmp("top");
    ProfileResult result =
        profileRegisterVariation(as.assemble(), 50000);

    // At depth 1 the register moved exactly 1 block; at depth 12,
    // exactly 12 blocks.
    const auto &d1 = result.registerDelta.byDepth[0];
    EXPECT_GT(d1.total(), 0u);
    EXPECT_DOUBLE_EQ(d1.fraction(1), 1.0);
    const auto &d12 = result.registerDelta.byDepth[2];
    EXPECT_DOUBLE_EQ(d12.fraction(12), 1.0);
}

TEST(Profiler, EaDeltasTrackTheSameStream)
{
    Assembler as;
    as.movi(isa::R1, 0x100000);
    as.label("top");
    as.load(isa::R2, isa::R1, 0);
    as.addi(isa::R1, isa::R1, 64);
    as.jmp("top");
    ProfileResult result =
        profileRegisterVariation(as.assemble(), 50000);
    const auto &ea1 = result.eaDelta.byDepth[0];
    ASSERT_GT(ea1.total(), 0u);
    EXPECT_DOUBLE_EQ(ea1.fraction(1), 1.0);
}

TEST(Profiler, ScatteredEasLandInTheOverflowTail)
{
    // Pointer-chase over widely scattered nodes: the register (and EA)
    // deltas should overwhelmingly exceed 32 blocks.
    constexpr int nodes = 512;
    Assembler as;
    as.movi(isa::R1, 0x100000);
    as.label("top");
    as.load(isa::R1, isa::R1, 0);
    as.jmp("top");
    for (int i = 0; i < nodes; ++i) {
        int next = (i + 211) % nodes;
        as.data(0x100000 + static_cast<Addr>(i) * 8192,
                0x100000 + static_cast<Addr>(next) * 8192);
    }
    ProfileResult result =
        profileRegisterVariation(as.assemble(), 20000);
    const auto &ea1 = result.eaDelta.byDepth[0];
    ASSERT_GT(ea1.total(), 0u);
    EXPECT_GT(static_cast<double>(ea1.overflow()) / ea1.total(), 0.9);
}

TEST(Profiler, CountsBasicBlocksAndInstructions)
{
    Assembler as;
    as.label("top");
    as.nop();
    as.jmp("top");
    ProfileResult result =
        profileRegisterVariation(as.assemble(), 1000);
    EXPECT_EQ(result.instructions, 1000u);
    EXPECT_NEAR(static_cast<double>(result.basicBlocks), 500.0, 2.0);
}

TEST(Profiler, PaperContrastOnTheRealSuite)
{
    // The headline claim of Fig. 3: register contents drift less than
    // per-load effective addresses at 12-BB depth. Check it on a
    // workload with irregular accesses.
    const auto &workload =
        workloads::workloadByName("soplex");
    ProfileResult result =
        profileRegisterVariation(workload.program, 200000);
    const auto &reg12 = result.registerDelta.byDepth[2];
    const auto &ea12 = result.eaDelta.byDepth[2];
    ASSERT_GT(reg12.total(), 0u);
    ASSERT_GT(ea12.total(), 0u);
    EXPECT_GE(reg12.cumulativeFraction(31),
              ea12.cumulativeFraction(31));
}

} // namespace
} // namespace bfsim::sim
