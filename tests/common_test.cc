/**
 * @file
 * Unit tests for src/common: address helpers, RNG determinism,
 * histograms / CDFs, means, the stat registry and the table printer.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace bfsim {
namespace {

TEST(Types, BlockAlignMasksLowBits)
{
    EXPECT_EQ(blockAlign(0x0), 0u);
    EXPECT_EQ(blockAlign(0x3f), 0u);
    EXPECT_EQ(blockAlign(0x40), 0x40u);
    EXPECT_EQ(blockAlign(0x1234567f), 0x12345640u);
}

TEST(Types, BlockNumberDividesBySize)
{
    EXPECT_EQ(blockNumber(0x0), 0u);
    EXPECT_EQ(blockNumber(0x40), 1u);
    EXPECT_EQ(blockNumber(0x1000), 64u);
}

TEST(Types, BlockDeltaIsSignedBlockDistance)
{
    EXPECT_EQ(blockDelta(0x100, 0x100), 0);
    EXPECT_EQ(blockDelta(0x140, 0x100), 1);
    EXPECT_EQ(blockDelta(0x100, 0x200), -4);
    // Sub-block offsets do not register as deltas.
    EXPECT_EQ(blockDelta(0x108, 0x130), 0);
}

TEST(Types, ConstantsAreConsistent)
{
    EXPECT_EQ(1u << blockSizeBits, blockSizeBytes);
    EXPECT_EQ(numArchRegs, 32);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Histogram, CountsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(3);
    h.sample(10); // overflow
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, CumulativeFractionIsMonotone)
{
    Histogram h(8);
    for (std::uint64_t v = 0; v < 8; ++v)
        for (std::uint64_t k = 0; k <= v; ++k)
            h.sample(v);
    double prev = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
        double c = h.cumulativeFraction(i);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(7), 1.0);
}

TEST(Histogram, EmptyHistogramYieldsZeroFractions)
{
    Histogram h(4);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(3), 0.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(2);
    h.sample(0);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Means, GeometricMeanOfIdenticalValues)
{
    EXPECT_DOUBLE_EQ(geometricMean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Means, GeometricMeanKnownValue)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 2.0, 4.0}), 2.0, 1e-12);
}

TEST(Means, EmptyInputsYieldZero)
{
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(Means, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatSet, CountersAreNamedAndPersistent)
{
    StatSet stats;
    stats.counter("hits").inc();
    stats.counter("hits").inc(4);
    EXPECT_EQ(stats.get("hits"), 5u);
    EXPECT_EQ(stats.get("never"), 0u);
}

TEST(StatSet, ResetZeroesAll)
{
    StatSet stats;
    stats.counter("a").inc(3);
    stats.counter("b").inc(7);
    stats.reset();
    EXPECT_EQ(stats.get("a"), 0u);
    EXPECT_EQ(stats.get("b"), 0u);
}

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(TextTable, FormatsNumbers)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(static_cast<std::uint64_t>(42)), "42");
}

} // namespace
} // namespace bfsim
