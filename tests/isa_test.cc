/**
 * @file
 * Unit tests for the micro-ISA: instruction classification, the
 * assembler's label resolution and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace bfsim::isa {
namespace {

TEST(Instruction, ControlClassification)
{
    Instruction beq;
    beq.op = Opcode::Beq;
    EXPECT_TRUE(beq.isControl());
    EXPECT_TRUE(beq.isCondBranch());

    Instruction jmp;
    jmp.op = Opcode::Jmp;
    EXPECT_TRUE(jmp.isControl());
    EXPECT_FALSE(jmp.isCondBranch());

    Instruction add;
    add.op = Opcode::Add;
    EXPECT_FALSE(add.isControl());
}

TEST(Instruction, MemoryClassification)
{
    Instruction ld;
    ld.op = Opcode::Load;
    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.isMemory());
    EXPECT_FALSE(ld.isStore());

    Instruction st;
    st.op = Opcode::Store;
    EXPECT_TRUE(st.isStore());
    EXPECT_TRUE(st.isMemory());
    EXPECT_FALSE(st.isLoad());
}

TEST(Instruction, DestWriters)
{
    Instruction add;
    add.op = Opcode::Add;
    EXPECT_TRUE(add.writesDest());

    Instruction st;
    st.op = Opcode::Store;
    EXPECT_FALSE(st.writesDest());

    Instruction b;
    b.op = Opcode::Blt;
    EXPECT_FALSE(b.writesDest());
}

TEST(Instruction, LatencyClasses)
{
    Instruction add;
    add.op = Opcode::Add;
    EXPECT_EQ(add.executeLatency(), 1u);
    Instruction mul;
    mul.op = Opcode::Mul;
    EXPECT_GT(mul.executeLatency(), 1u);
    Instruction fmul;
    fmul.op = Opcode::FMul;
    EXPECT_GT(fmul.executeLatency(), mul.executeLatency());
}

TEST(Instruction, InstAddrIsFourByteSpaced)
{
    EXPECT_EQ(instAddr(1) - instAddr(0), 4u);
    EXPECT_EQ(instAddr(100) - instAddr(0), 400u);
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    Assembler as;
    as.movi(R1, 0);
    as.label("top");
    as.addi(R1, R1, 1);
    as.blt(R1, R2, "top");     // backward
    as.beq(R1, R2, "bottom");  // forward
    as.nop();
    as.label("bottom");
    as.halt();
    Program p = as.assemble();
    ASSERT_EQ(p.size(), 6u);
    EXPECT_EQ(p.at(2).target, 1u); // blt -> top
    EXPECT_EQ(p.at(3).target, 5u); // beq -> bottom
}

TEST(Assembler, EmitsExpectedEncodings)
{
    Assembler as;
    as.load(R3, R4, 24);
    as.store(R5, R6, -8);
    as.addi(R7, R8, 100);
    Program p = as.assemble();
    EXPECT_EQ(p.at(0).op, Opcode::Load);
    EXPECT_EQ(p.at(0).rd, R3);
    EXPECT_EQ(p.at(0).rs1, R4);
    EXPECT_EQ(p.at(0).imm, 24);
    EXPECT_EQ(p.at(1).op, Opcode::Store);
    EXPECT_EQ(p.at(1).rs2, R5);
    EXPECT_EQ(p.at(1).rs1, R6);
    EXPECT_EQ(p.at(1).imm, -8);
    EXPECT_EQ(p.at(2).op, Opcode::AddI);
}

TEST(AssemblerDeath, UndefinedLabelIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler as;
            as.jmp("nowhere");
            as.assemble();
        },
        testing::ExitedWithCode(1), "undefined label");
}

TEST(AssemblerDeath, DuplicateLabelIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler as;
            as.label("x");
            as.nop();
            as.label("x");
        },
        testing::ExitedWithCode(1), "duplicate label");
}

TEST(Assembler, DataWordsReachTheProgramImage)
{
    Assembler as;
    as.halt();
    as.data(0x1000, 0xdeadbeef);
    as.data(0x1008, 7);
    Program p = as.assemble();
    ASSERT_EQ(p.initialImage().size(), 2u);
    EXPECT_EQ(p.initialImage()[0].first, 0x1000u);
    EXPECT_EQ(p.initialImage()[0].second, 0xdeadbeefu);
}

TEST(Assembler, ReusableAfterAssemble)
{
    Assembler as;
    as.nop();
    Program p1 = as.assemble();
    as.nop();
    as.nop();
    Program p2 = as.assemble();
    EXPECT_EQ(p1.size(), 1u);
    EXPECT_EQ(p2.size(), 2u);
}

TEST(Disassembler, RendersCommonForms)
{
    Instruction ld;
    ld.op = Opcode::Load;
    ld.rd = 2;
    ld.rs1 = 7;
    ld.imm = 4;
    EXPECT_EQ(disassemble(ld), "load r2, 4(r7)");

    Instruction bne;
    bne.op = Opcode::Bne;
    bne.rs1 = 1;
    bne.rs2 = 0;
    bne.target = 12;
    EXPECT_EQ(disassemble(bne), "bne r1, r0, @12");

    Instruction movi;
    movi.op = Opcode::MovI;
    movi.rd = 9;
    movi.imm = -3;
    EXPECT_EQ(disassemble(movi), "movi r9, -3");
}

TEST(Program, ListingHasOneLinePerInstruction)
{
    Assembler as;
    as.nop();
    as.nop();
    as.halt();
    Program p = as.assemble();
    std::string listing = p.listing();
    EXPECT_EQ(std::count(listing.begin(), listing.end(), '\n'), 3);
}

TEST(ProgramDeath, OutOfRangePcPanics)
{
    Assembler as;
    as.nop();
    Program p = as.assemble();
    EXPECT_DEATH(p.at(5), "out of range");
}

} // namespace
} // namespace bfsim::isa
