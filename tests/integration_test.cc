/**
 * @file
 * Cross-module integration tests: full simulations exercising the
 * paper's central claims end to end — prefetchers beat the baseline on
 * streams, B-Fetch's confidence machinery throttles on hostile control
 * flow, the per-load filter contains pollution, and the multiprogrammed
 * weighted-speedup pipeline holds together.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/mixes.hh"

namespace bfsim {
namespace {

using harness::RunOptions;
using harness::runSingle;
using harness::SingleResult;

RunOptions
medium()
{
    RunOptions options;
    options.instructions = 120000;
    return options;
}

TEST(Integration, EveryPrefetcherBeatsBaselineOnPureStreaming)
{
    RunOptions options = medium();
    double base =
        runSingle("libquantum", "None", options).core.ipc;
    for (const char *kind :
         {"NextN", "Stride",
          "SMS", "Bfetch"}) {
        double ipc = runSingle("libquantum", kind, options).core.ipc;
        EXPECT_GT(ipc, base * 1.1)
            << sim::prefetcherName(kind) << " failed to speed up";
    }
}

TEST(Integration, PerfectPrefetcherIsAnUpperBound)
{
    RunOptions options = medium();
    double perfect =
        runSingle("libquantum", "Perfect", options)
            .core.ipc;
    for (const char *kind :
         {"None", "Stride",
          "SMS", "Bfetch"}) {
        EXPECT_LE(runSingle("libquantum", kind, options).core.ipc,
                  perfect * 1.02);
    }
}

TEST(Integration, CacheResidentKernelIsInsensitive)
{
    RunOptions options = medium();
    double base =
        runSingle("gamess", "None", options).core.ipc;
    double bf =
        runSingle("gamess", "Bfetch", options).core.ipc;
    EXPECT_NEAR(bf / base, 1.0, 0.03);
}

TEST(Integration, BFetchStandsDownOnRandomProbes)
{
    // sjeng's transposition probes are unpredictable; the per-load
    // filter must keep B-Fetch from polluting (paper IV-B.3).
    RunOptions options = medium();
    SingleResult r = runSingle("sjeng", "Bfetch", options);
    SingleResult base =
        runSingle("sjeng", "None", options);
    EXPECT_LT(r.mem.prefetchesIssued, 5000u);
    EXPECT_GT(r.core.ipc, base.core.ipc * 0.97);
    EXPECT_GT(r.bfetch.filteredByPerLoad, 0u);
}

TEST(Integration, ConfidenceThrottlesOnUnpredictableBranches)
{
    // bzip2's data-dependent branches should keep B-Fetch's average
    // lookahead depth far below the streaming case.
    RunOptions options = medium();
    SingleResult branchy =
        runSingle("bzip2", "Bfetch", options);
    SingleResult stream =
        runSingle("libquantum", "Bfetch", options);
    EXPECT_LT(branchy.avgLookaheadDepth,
              stream.avgLookaheadDepth * 0.6);
}

TEST(Integration, BFetchPrefetchesAreOverwhelminglyUseful)
{
    RunOptions options = medium();
    for (const char *name : {"libquantum", "lbm", "leslie3d"}) {
        SingleResult r = runSingle(name, "Bfetch", options);
        ASSERT_GT(r.mem.prefetchesIssued, 100u) << name;
        double useful_rate =
            static_cast<double>(r.mem.usefulPrefetches) /
            static_cast<double>(r.mem.usefulPrefetches +
                                r.mem.uselessPrefetches + 1);
        EXPECT_GT(useful_rate, 0.9) << name;
    }
}

TEST(Integration, LookaheadDepthIsInThePaperRange)
{
    // Paper V-B.1: "the average lookahead depth is 8 BB with 0.75
    // branch path confidence" — check the suite-wide average is in a
    // sane band around that.
    RunOptions options = medium();
    double total = 0.0;
    int counted = 0;
    for (const char *name : {"libquantum", "hmmer", "leslie3d", "bzip2",
                             "sjeng", "gromacs"}) {
        total += runSingle(name, "Bfetch", options)
                     .avgLookaheadDepth;
        ++counted;
    }
    double mean = total / counted;
    EXPECT_GT(mean, 3.0);
    EXPECT_LT(mean, 16.0);
}

TEST(Integration, MixContentionReducesPerCoreIpc)
{
    RunOptions options = medium();
    const SingleResult &solo = harness::runSingleCached(
        "libquantum", "None", options);
    harness::MixResult mix =
        harness::runMix({"libquantum", "lbm", "leslie3d", "bwaves"},
                        "None", options);
    EXPECT_LT(mix.cores[0].ipc, solo.core.ipc);
    EXPECT_LT(mix.weightedSpeedup, 4.0);
}

TEST(Integration, PrefetchingLiftsWeightedSpeedupInMixes)
{
    RunOptions options;
    options.instructions = 60000;
    std::vector<std::string> mix{"libquantum", "leslie3d"};
    double base =
        harness::runMix(mix, "None", options)
            .weightedSpeedup;
    double bf =
        harness::runMix(mix, "Bfetch", options)
            .weightedSpeedup;
    EXPECT_GT(bf, base * 1.2);
}

TEST(Integration, BranchMissRateIsRealistic)
{
    // The paper's baseline reports a 2.76% average conditional miss
    // rate; ours should land in the low single digits on the suite.
    RunOptions options = medium();
    double total = 0.0;
    int counted = 0;
    for (const auto &w : workloads::allWorkloads()) {
        total += harness::runSingleCached(w.name, "None",
                                          options)
                     .core.branchMissRate;
        ++counted;
    }
    double mean = total / counted;
    EXPECT_GT(mean, 0.001);
    EXPECT_LT(mean, 0.12);
}

} // namespace
} // namespace bfsim
