/**
 * @file
 * Batched op delivery tests: nextBatch and zero-copy nextSpan stream
 * identity against the one-op path for live and replayed sources,
 * batch/span boundary behaviour (halt mid-batch, batches larger than
 * the recorded trace, chunk crossings and clamping, noSpan fallback),
 * fault propagation from a mid-batch trace extension, and
 * the bit-identity bar of the hot-loop overhaul — CoreStats byte-equal
 * between BFSIM_BATCH_OPS=0 and batched delivery, over live and
 * trace-replay sources, serial and parallel harness runs.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/fault.hh"
#include "isa/assembler.hh"
#include "mem/hierarchy.hh"
#include "sim/dyn_op_source.hh"
#include "sim/ooo_core.hh"
#include "sim/trace.hh"
#include "workloads/workload.hh"

namespace bfsim::sim {
namespace {

using isa::Assembler;
using isa::Program;

/** Save/restore the process-global batched-delivery flag. */
class BatchOpsGuard
{
  public:
    BatchOpsGuard() : saved(batchOpsEnabled()) {}
    ~BatchOpsGuard() { setBatchOpsEnabled(saved); }

  private:
    bool saved;
};

/** Drain up to `max_ops` ops one next() call at a time. */
std::vector<DynOp>
collectPerOp(DynOpSource &source, std::uint64_t max_ops)
{
    std::vector<DynOp> ops;
    DynOp op;
    while (ops.size() < max_ops && source.next(op))
        ops.push_back(op);
    return ops;
}

/** Drain up to `max_ops` ops via nextBatch refills of `batch_size`. */
std::vector<DynOp>
collectBatched(DynOpSource &source, std::uint64_t max_ops,
               std::size_t batch_size)
{
    std::vector<DynOp> ops;
    std::vector<DynOp> buf(batch_size);
    while (ops.size() < max_ops) {
        std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
            batch_size, max_ops - ops.size()));
        std::size_t got = source.nextBatch(buf.data(), want);
        if (got == 0)
            break;
        ops.insert(ops.end(), buf.begin(), buf.begin() + got);
    }
    return ops;
}

/**
 * Drain up to `max_ops` ops via zero-copy spans of at most `max_span`,
 * rebuilding each op from the column arrays exactly as the timing
 * model's span path does. Returns empty if the source has no spans.
 */
std::vector<DynOp>
collectSpans(DynOpSource &source, std::uint64_t max_ops,
             std::size_t max_span)
{
    std::vector<DynOp> ops;
    OpSpanView span;
    while (ops.size() < max_ops) {
        std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
            max_span, max_ops - ops.size()));
        std::size_t got = source.nextSpan(span, want);
        if (got == DynOpSource::noSpan || got == 0)
            break;
        EXPECT_EQ(got, span.count);
        EXPECT_LE(got, want);
        for (std::size_t s = 0; s < got; ++s) {
            DynOp op;
            op.pcIndex = span.pcIndex[s];
            op.pc = isa::instAddr(op.pcIndex);
            op.seq = span.baseSeq + s;
            op.taken = (span.flags[s] & OpSpanView::takenFlag) != 0;
            op.effAddr = span.effAddr[s];
            op.writesReg =
                (span.flags[s] & OpSpanView::writesRegFlag) != 0;
            op.result = span.result[s];
            ops.push_back(op);
        }
    }
    return ops;
}

/**
 * Compare the fields a span view carries (everything in a DynOp except
 * `inst` and `targetPc`, which the batched timing path never reads).
 */
void
expectSameSpanFields(const std::vector<DynOp> &a,
                     const std::vector<DynOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pcIndex, b[i].pcIndex) << "op " << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << "op " << i;
        EXPECT_EQ(a[i].seq, b[i].seq) << "op " << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << "op " << i;
        EXPECT_EQ(a[i].effAddr, b[i].effAddr) << "op " << i;
        EXPECT_EQ(a[i].writesReg, b[i].writesReg) << "op " << i;
        EXPECT_EQ(a[i].result, b[i].result) << "op " << i;
    }
}

void
expectSameStream(const std::vector<DynOp> &a, const std::vector<DynOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pcIndex, b[i].pcIndex) << "op " << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << "op " << i;
        EXPECT_EQ(a[i].inst, b[i].inst) << "op " << i;
        EXPECT_EQ(a[i].seq, b[i].seq) << "op " << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << "op " << i;
        EXPECT_EQ(a[i].targetPc, b[i].targetPc) << "op " << i;
        EXPECT_EQ(a[i].effAddr, b[i].effAddr) << "op " << i;
        EXPECT_EQ(a[i].writesReg, b[i].writesReg) << "op " << i;
        EXPECT_EQ(a[i].result, b[i].result) << "op " << i;
    }
}

/** A short halting program with branches, loads, stores and r0. */
Program
haltingProgram(int iterations)
{
    Assembler as;
    as.movi(isa::R1, iterations);
    as.movi(isa::R2, 0x8000);
    as.movi(isa::R3, 0);
    as.label("loop");
    as.store(isa::R1, isa::R2, 0);
    as.load(isa::R4, isa::R2, 0);
    as.add(isa::R3, isa::R3, isa::R4);
    as.addi(isa::R2, isa::R2, 8);
    as.addi(isa::R1, isa::R1, -1);
    as.bne(isa::R1, isa::R0, "loop");
    as.halt();
    return as.assemble();
}

const Program &
workloadProgram(const char *name)
{
    return workloads::workloadByName(name).program;
}

// ------------------------------------------------ stream identity

TEST(NextBatch, LiveSourceMatchesPerOpStream)
{
    const Program &p = workloadProgram("libquantum");
    LiveSource per_op(p), batched(p);
    // A batch size that is no divisor of anything interesting, so
    // refills land at arbitrary offsets.
    expectSameStream(collectPerOp(per_op, 40000),
                     collectBatched(batched, 40000, 997));
}

TEST(NextBatch, TraceReplayMatchesPerOpStreamAcrossChunks)
{
    const Program &p = workloadProgram("libquantum");
    auto buffer = std::make_shared<TraceBuffer>(p);
    TraceReplay per_op(buffer), batched(buffer);
    // 40000 ops cross TraceBuffer chunk boundaries (chunkOps = 16384),
    // exercising fetchSpan's per-chunk span stitching.
    expectSameStream(collectPerOp(per_op, 40000),
                     collectBatched(batched, 40000, 999));
}

TEST(NextSpan, TraceReplayMatchesPerOpStreamAcrossChunks)
{
    const Program &p = workloadProgram("libquantum");
    auto buffer = std::make_shared<TraceBuffer>(p);
    TraceReplay per_op(buffer), spanned(buffer);
    // 40000 ops cross chunk boundaries (chunkOps = 16384); spans must
    // clamp there and resume seamlessly in the next chunk.
    expectSameSpanFields(collectPerOp(per_op, 40000),
                         collectSpans(spanned, 40000, 997));
}

TEST(NextSpan, SpansClampToChunkBoundary)
{
    const Program &p = workloadProgram("libquantum");
    auto buffer = std::make_shared<TraceBuffer>(p);
    buffer->ensure(TraceBuffer::chunkOps + 100);
    TraceReplay replay(buffer);
    OpSpanView span;
    // An oversized request is served up to the chunk edge, never
    // through it (the view must stay one contiguous array slice).
    std::size_t got =
        replay.nextSpan(span, static_cast<std::size_t>(
                                  2 * TraceBuffer::chunkOps));
    EXPECT_EQ(got, TraceBuffer::chunkOps);
    EXPECT_EQ(span.baseSeq, 1u);
    // The follow-up span starts exactly at the boundary.
    got = replay.nextSpan(span, 50);
    EXPECT_EQ(got, 50u);
    EXPECT_EQ(span.baseSeq, TraceBuffer::chunkOps + 1);
}

TEST(NextSpan, LiveSourceReportsNoSpan)
{
    const Program &p = workloadProgram("libquantum");
    LiveSource src(p);
    OpSpanView span;
    EXPECT_EQ(src.nextSpan(span, 64), DynOpSource::noSpan);
}

TEST(NextSpan, HaltReturnsZeroAfterStreamEnd)
{
    Program p = haltingProgram(10);
    LiveSource ref(p);
    std::uint64_t total = collectPerOp(ref, 1u << 20).size();
    ASSERT_GT(total, 0u);

    TraceCapture capture(p);
    EXPECT_EQ(collectSpans(capture, 1u << 20, 64).size(), total);
    OpSpanView span;
    EXPECT_EQ(capture.nextSpan(span, 64), 0u);
    EXPECT_TRUE(capture.halted());
}

// ------------------------------------------------ batch boundaries

TEST(NextBatch, HaltMidBatchReturnsShortThenZero)
{
    Program p = haltingProgram(10);
    LiveSource per_op(p);
    std::uint64_t total = collectPerOp(per_op, 1u << 20).size();
    ASSERT_GT(total, 0u);

    LiveSource src(p);
    std::vector<DynOp> buf(total + 1000);
    // One oversized request: the program halts mid-batch, so the batch
    // comes back short...
    EXPECT_EQ(src.nextBatch(buf.data(), buf.size()), total);
    EXPECT_TRUE(src.halted());
    // ...and every later request returns 0, not garbage.
    EXPECT_EQ(src.nextBatch(buf.data(), buf.size()), 0u);
}

TEST(NextBatch, TraceReplayHaltMidBatch)
{
    Program p = haltingProgram(10);
    LiveSource ref(p);
    std::uint64_t total = collectPerOp(ref, 1u << 20).size();

    TraceCapture capture(p);
    std::vector<DynOp> buf(total + 1000);
    std::uint64_t got = 0;
    // The replay cursor extends the buffer in bounded steps, so it may
    // serve several short batches before reaching the halt.
    for (;;) {
        std::size_t n = capture.nextBatch(buf.data(), buf.size());
        if (n == 0)
            break;
        got += n;
    }
    EXPECT_EQ(got, total);
    EXPECT_TRUE(capture.halted());
}

TEST(NextBatch, BatchLargerThanRecordedTraceServesCommittedThenExtends)
{
    const Program &p = workloadProgram("mcf");
    auto buffer = std::make_shared<TraceBuffer>(p);
    buffer->ensure(100);
    ASSERT_EQ(buffer->size(), 100u);

    TraceReplay replay(buffer);
    std::vector<DynOp> buf(4096);
    // The first oversized request serves exactly the committed ops (a
    // short batch is cheaper than over-extending the shared buffer)...
    EXPECT_EQ(replay.nextBatch(buf.data(), buf.size()), 100u);
    // ...and the next request transparently extends past the end.
    EXPECT_GT(replay.nextBatch(buf.data(), buf.size()), 0u);
}

// ------------------------------------------------ fault propagation

TEST(NextBatch, MidBatchTraceFaultPropagates)
{
    const Program &p = workloadProgram("libquantum");
    TraceCapture capture(p);
    std::vector<DynOp> buf(1024);
    // Consume a healthy prefix first, so the fault strikes a mid-run
    // extension rather than the initial one.
    ASSERT_EQ(capture.nextBatch(buf.data(), buf.size()), buf.size());

    harness::ScopedFault fault(fault::Site::TraceExtend, 0);
    EXPECT_THROW(
        {
            for (int i = 0; i < 64; ++i)
                if (capture.nextBatch(buf.data(), buf.size()) == 0)
                    break;
        },
        SimError);
    EXPECT_TRUE(fault.fired());
}

// ------------------------------------------------ timing bit-identity

CoreStats
runCoreStats(std::unique_ptr<DynOpSource> source, std::uint64_t insts)
{
    CoreConfig cfg;
    cfg.prefetcher = "Bfetch";
    mem::Hierarchy hierarchy{mem::HierarchyConfig{}};
    OooCore core(0, cfg, std::move(source), hierarchy);
    while (core.retired() < insts && core.stepInstruction()) {
    }
    return core.stats();
}

TEST(BatchIdentity, CoreStatsByteIdenticalAcrossModesAndSources)
{
    BatchOpsGuard guard;
    const Program &p = workloadProgram("mcf");
    constexpr std::uint64_t insts = 30000;

    setBatchOpsEnabled(false);
    CoreStats ref = runCoreStats(std::make_unique<LiveSource>(p), insts);

    struct Case
    {
        const char *name;
        bool batch;
        bool trace;
    };
    for (const Case &c : {Case{"batched live", true, false},
                          Case{"one-op trace", false, true},
                          Case{"batched trace", true, true}}) {
        setBatchOpsEnabled(c.batch);
        std::unique_ptr<DynOpSource> source;
        if (c.trace)
            source = std::make_unique<TraceCapture>(p);
        else
            source = std::make_unique<LiveSource>(p);
        CoreStats stats = runCoreStats(std::move(source), insts);
        EXPECT_EQ(std::memcmp(&stats, &ref, sizeof(CoreStats)), 0)
            << c.name;
    }
}

/** IPCs of a small sweep, with the caches cleared so nothing leaks
 *  between modes (the memo key does not include the batch mode). */
std::vector<CoreStats>
runSweepStats(unsigned threads)
{
    harness::clearMemoCaches();
    harness::clearTraceCache();
    harness::RunOptions options;
    options.instructions = 20000;
    std::vector<harness::BatchJob> jobs;
    for (const char *w : {"libquantum", "mcf"}) {
        for (const char *kind :
             {"None", "Bfetch"}) {
            jobs.push_back(harness::BatchJob::single(w, kind, options));
        }
    }
    harness::BatchResult batch =
        harness::runBatch(jobs, threads, nullptr);
    std::vector<CoreStats> stats;
    for (const harness::BatchItem &item : batch.items) {
        EXPECT_FALSE(item.failed) << item.error;
        stats.push_back(item.single->core);
    }
    return stats;
}

TEST(BatchIdentity, HarnessResultsIdenticalAcrossModesAndThreadCounts)
{
    BatchOpsGuard guard;

    setBatchOpsEnabled(false);
    std::vector<CoreStats> ref = runSweepStats(1);

    struct Case
    {
        const char *name;
        bool batch;
        unsigned threads;
    };
    for (const Case &c : {Case{"one-op parallel", false, 4},
                          Case{"batched serial", true, 1},
                          Case{"batched parallel", true, 4}}) {
        setBatchOpsEnabled(c.batch);
        std::vector<CoreStats> stats = runSweepStats(c.threads);
        ASSERT_EQ(stats.size(), ref.size()) << c.name;
        for (std::size_t i = 0; i < stats.size(); ++i) {
            EXPECT_EQ(
                std::memcmp(&stats[i], &ref[i], sizeof(CoreStats)), 0)
                << c.name << " job " << i;
        }
    }
    // Leave the shared caches clean for whatever test runs next.
    harness::clearMemoCaches();
    harness::clearTraceCache();
}

} // namespace
} // namespace bfsim::sim
