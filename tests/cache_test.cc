/**
 * @file
 * Tag-array tests: lookup/insert, LRU victim selection, dirty and
 * prefetch metadata propagation through eviction, parameterized over
 * associativity.
 */

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "mem/cache.hh"

namespace bfsim::mem {
namespace {

CacheConfig
smallCache(unsigned assoc)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = assoc * 4 * blockSizeBytes; // 4 sets
    cfg.associativity = assoc;
    cfg.hitLatency = 2;
    return cfg;
}

class CacheAssoc : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheAssoc, MissThenHit)
{
    Cache cache(smallCache(GetParam()));
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
    EvictInfo evict;
    cache.insert(0x1000, evict);
    EXPECT_FALSE(evict.evicted);
    EXPECT_NE(cache.lookup(0x1000), nullptr);
}

TEST_P(CacheAssoc, SubBlockAddressesShareABlock)
{
    Cache cache(smallCache(GetParam()));
    EvictInfo evict;
    cache.insert(0x1000, evict);
    EXPECT_NE(cache.lookup(0x1004), nullptr);
    EXPECT_NE(cache.lookup(0x103f), nullptr);
    EXPECT_EQ(cache.lookup(0x1040), nullptr);
}

TEST_P(CacheAssoc, FillsAllWaysBeforeEvicting)
{
    unsigned assoc = GetParam();
    Cache cache(smallCache(assoc));
    std::size_t sets = cache.numSets();
    EvictInfo evict;
    // All of these map to set 0.
    for (unsigned i = 0; i < assoc; ++i) {
        cache.insert(i * sets * blockSizeBytes, evict);
        EXPECT_FALSE(evict.evicted);
    }
    cache.insert(assoc * sets * blockSizeBytes, evict);
    EXPECT_TRUE(evict.evicted);
}

TEST_P(CacheAssoc, LruVictimIsLeastRecentlyTouched)
{
    unsigned assoc = GetParam();
    if (assoc < 2)
        GTEST_SKIP();
    Cache cache(smallCache(assoc));
    std::size_t stride = cache.numSets() * blockSizeBytes;
    EvictInfo evict;
    for (unsigned i = 0; i < assoc; ++i)
        cache.insert(i * stride, evict);
    // Touch block 0 so block 1 becomes LRU.
    cache.lookup(0);
    cache.insert(assoc * stride, evict);
    ASSERT_TRUE(evict.evicted);
    EXPECT_EQ(evict.blockAddr, stride);
    EXPECT_NE(cache.lookup(0), nullptr);
    EXPECT_EQ(cache.lookup(stride), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheAssoc,
                         ::testing::Values(1u, 2u, 8u, 16u));

TEST(Cache, EvictionReportsDirtyAndAddress)
{
    Cache cache(smallCache(1));
    EvictInfo evict;
    CacheBlock *blk = cache.insert(0x1000, evict);
    blk->dirty = true;
    std::size_t stride = cache.numSets() * blockSizeBytes;
    cache.insert(0x1000 + stride, evict);
    ASSERT_TRUE(evict.evicted);
    EXPECT_TRUE(evict.dirty);
    EXPECT_EQ(evict.blockAddr, 0x1000u);
}

TEST(Cache, EvictionReportsWastedPrefetch)
{
    Cache cache(smallCache(1));
    EvictInfo evict;
    CacheBlock *blk = cache.insert(0x2000, evict);
    blk->prefetched = true;
    blk->loadPcHash = 0x155;
    std::size_t stride = cache.numSets() * blockSizeBytes;
    cache.insert(0x2000 + stride, evict);
    ASSERT_TRUE(evict.evicted);
    EXPECT_TRUE(evict.wastedPrefetch);
    EXPECT_EQ(evict.loadPcHash, 0x155);
}

TEST(Cache, UsedPrefetchIsNotWasted)
{
    Cache cache(smallCache(1));
    EvictInfo evict;
    CacheBlock *blk = cache.insert(0x2000, evict);
    blk->prefetched = true;
    blk->prefetchUseful = true;
    std::size_t stride = cache.numSets() * blockSizeBytes;
    cache.insert(0x2000 + stride, evict);
    ASSERT_TRUE(evict.evicted);
    EXPECT_FALSE(evict.wastedPrefetch);
}

TEST(Cache, ReinsertSameBlockDoesNotEvict)
{
    Cache cache(smallCache(2));
    EvictInfo evict;
    cache.insert(0x3000, evict);
    cache.insert(0x3000, evict);
    EXPECT_FALSE(evict.evicted);
    EXPECT_EQ(cache.validBlockCount(), 1u);
}

TEST(Cache, InvalidateRemovesBlock)
{
    Cache cache(smallCache(4));
    EvictInfo evict;
    cache.insert(0x4000, evict);
    EXPECT_TRUE(cache.contains(0x4000));
    cache.invalidate(0x4000);
    EXPECT_FALSE(cache.contains(0x4000));
    // Invalidating a missing block is harmless.
    cache.invalidate(0x4000);
}

TEST(Cache, PeekDoesNotPerturbLru)
{
    Cache cache(smallCache(2));
    std::size_t stride = cache.numSets() * blockSizeBytes;
    EvictInfo evict;
    cache.insert(0, evict);
    cache.insert(stride, evict);
    // Peek block 0 (no LRU update): it must still be the LRU victim.
    EXPECT_NE(cache.peek(0), nullptr);
    cache.insert(2 * stride, evict);
    ASSERT_TRUE(evict.evicted);
    EXPECT_EQ(evict.blockAddr, 0u);
}

TEST(Cache, GeometryDerivedFromConfig)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.associativity = 8;
    Cache cache(cfg);
    EXPECT_EQ(cache.numSets(), 64u * 1024 / (8 * blockSizeBytes));
}

TEST(CacheErrors, RejectsNonPowerOfTwoSets)
{
    CacheConfig cfg;
    cfg.sizeBytes = 3 * blockSizeBytes;
    cfg.associativity = 1;
    EXPECT_THROW(Cache cache(cfg), SimError);
}

} // namespace
} // namespace bfsim::mem
