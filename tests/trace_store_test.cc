/**
 * @file
 * On-disk trace store tests: artifact round-trips (bit-identical DynOp
 * streams and CoreStats across live / memory-trace / disk-trace
 * sources), the <=6 bytes-per-op size budget, every corruption shape
 * the format defends against (truncation, flipped payload bytes, stale
 * format versions, leftover partial .tmp files), single-writer lock
 * contention, growth rewrites, the BFSIM_TRACE_CACHE=0 bypass of both
 * tiers, and injected trace_store faults at open and decode time.
 */

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.hh"
#include "common/fault.hh"
#include "harness/experiment.hh"
#include "harness/fault.hh"
#include "isa/assembler.hh"
#include "sim/dyn_op_source.hh"
#include "sim/trace.hh"
#include "sim/trace_store.hh"
#include "workloads/workload.hh"

namespace bfsim::sim {
namespace {

using isa::Assembler;
using isa::Program;

/** Drain up to `max_ops` ops from a source. */
std::vector<DynOp>
collect(DynOpSource &source, std::uint64_t max_ops)
{
    std::vector<DynOp> ops;
    DynOp op;
    while (ops.size() < max_ops && source.next(op))
        ops.push_back(op);
    return ops;
}

void
expectSameStream(const std::vector<DynOp> &a, const std::vector<DynOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pcIndex, b[i].pcIndex) << "op " << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << "op " << i;
        EXPECT_EQ(a[i].inst, b[i].inst) << "op " << i;
        EXPECT_EQ(a[i].seq, b[i].seq) << "op " << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << "op " << i;
        EXPECT_EQ(a[i].targetPc, b[i].targetPc) << "op " << i;
        EXPECT_EQ(a[i].effAddr, b[i].effAddr) << "op " << i;
        EXPECT_EQ(a[i].writesReg, b[i].writesReg) << "op " << i;
        EXPECT_EQ(a[i].result, b[i].result) << "op " << i;
        if (testing::Test::HasFailure())
            return;
    }
}

/** A short program exercising branches, loads, stores, r0 and Halt. */
Program
mixedHaltingProgram()
{
    Assembler as;
    as.movi(isa::R1, 50);
    as.movi(isa::R2, 0x8000);
    as.movi(isa::R3, 0);
    as.label("loop");
    as.store(isa::R1, isa::R2, 0);
    as.load(isa::R4, isa::R2, 0);
    as.add(isa::R3, isa::R3, isa::R4);
    as.movi(isa::R0, 7);
    as.addi(isa::R2, isa::R2, 8);
    as.addi(isa::R1, isa::R1, -1);
    as.bne(isa::R1, isa::R0, "loop");
    as.halt();
    return as.assemble();
}

const Program &
workloadProgram(const char *name)
{
    return workloads::workloadByName(name).program;
}

std::vector<unsigned char>
readFile(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.good()) << path;
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(file),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(reinterpret_cast<const char *>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(file.good()) << path;
}

std::uint32_t
fileGet32(const std::vector<unsigned char> &bytes, std::size_t offset)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(bytes[offset + i]) << (i * 8);
    return v;
}

void
filePut32(std::vector<unsigned char> &bytes, std::size_t offset,
          std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes[offset + i] = static_cast<unsigned char>(v >> (i * 8));
}

/** Header geometry of format version 1 (mirrors trace_store.cc). */
constexpr std::size_t headerBytes = 48;
constexpr std::size_t versionOffset = 4;
constexpr std::size_t headerCrcOffset = 44;
constexpr std::size_t frameBytes = 12;

/**
 * Every test runs against its own store directory with all process-wide
 * trace state (both cache tiers, their counters) reset around it.
 */
class TraceStoreTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "bfsim_trace_store/" +
              testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        std::filesystem::remove_all(dir);
        harness::clearMemoCaches();
        harness::clearTraceCache();
        harness::setTraceCacheEnabled(true);
        trace_store::setDirectory(dir);
        trace_store::resetStats();
        harness::takeThreadCacheCounters();
    }

    void
    TearDown() override
    {
        trace_store::setDirectory("");
        harness::clearMemoCaches();
        harness::clearTraceCache();
        harness::setTraceCacheEnabled(true);
        trace_store::resetStats();
        std::filesystem::remove_all(dir);
    }

    /** Capture `ops` ops of `program` and persist them as `key`. */
    std::shared_ptr<TraceBuffer>
    captureAndSave(const trace_store::Key &key, const Program &program,
                   std::uint64_t ops)
    {
        auto buffer = std::make_shared<TraceBuffer>(program);
        buffer->ensure(ops);
        EXPECT_TRUE(trace_store::saveArtifact(key, *buffer));
        return buffer;
    }

    std::string dir;
};

// ------------------------------------------------------------ round trip

TEST_F(TraceStoreTest, RoundTripHaltingProgramBitIdentical)
{
    Program program = mixedHaltingProgram();
    auto key = trace_store::makeKey("halting", 1000, program);

    auto captured = std::make_shared<TraceBuffer>(program);
    TraceReplay capture(captured);
    std::vector<DynOp> reference = collect(capture, 1 << 20);
    ASSERT_TRUE(captured->halted());
    ASSERT_TRUE(trace_store::saveArtifact(key, *captured));

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    EXPECT_EQ(artifact->opCount(), captured->size());
    EXPECT_TRUE(artifact->halted());

    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    TraceReplay replay(restored);
    expectSameStream(reference, collect(replay, 1 << 20));
    EXPECT_TRUE(replay.halted());
    EXPECT_TRUE(restored->halted());
    // The halt came from the artifact header: nothing executed live.
    EXPECT_EQ(restored->captureSeconds(), 0.0);
    EXPECT_EQ(trace_store::stats().hits, 1u);
}

TEST_F(TraceStoreTest, RoundTripWorkloadStreamWithinByteBudget)
{
    const Program &program = workloadProgram("mcf");
    auto key = trace_store::makeKey("mcf", 50000, program);
    auto captured = captureAndSave(key, program, 50000);

    trace_store::Stats stats = trace_store::stats();
    EXPECT_EQ(stats.opsWritten, captured->size());
    ASSERT_GT(stats.opsWritten, 0u);
    EXPECT_GT(stats.bytesPerOp(), 0.0);
    // The headline acceptance bound: well under the 21 B/op in-memory
    // layout, and under the 6 B/op format budget.
    EXPECT_LE(stats.bytesPerOp(), 6.0);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    LiveSource live(program);
    TraceReplay replay(restored);
    expectSameStream(collect(live, 50000), collect(replay, 50000));
    EXPECT_EQ(trace_store::takeThreadCounters().fallbacks, 0u);
}

// ----------------------------------------------------------- corruption

TEST_F(TraceStoreTest, TruncatedArtifactFallsBackMidStream)
{
    const Program &program = workloadProgram("mcf");
    auto key = trace_store::makeKey("mcf", 50000, program);
    captureAndSave(key, program, 50000);

    // Cut the file mid-way through the second chunk's payload: chunk 0
    // decodes cleanly from disk, chunk 1 trips the bounds check, and
    // the buffer must fast-forward live execution over the verified
    // prefix without the consumer noticing.
    std::string path = trace_store::artifactPath(key);
    std::vector<unsigned char> bytes = readFile(path);
    std::size_t chunk0 = fileGet32(bytes, headerBytes);
    std::size_t cut = headerBytes + frameBytes + chunk0 + frameBytes + 37;
    ASSERT_LT(cut, bytes.size());
    bytes.resize(cut);
    writeFile(path, bytes);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr); // header is intact; damage is deeper
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    LiveSource live(program);
    TraceReplay replay(restored);
    expectSameStream(collect(live, 50000), collect(replay, 50000));
    EXPECT_EQ(trace_store::takeThreadCounters().fallbacks, 1u);
    // The fast-forwarded re-execution is billed as capture time.
    EXPECT_GT(restored->captureSeconds(), 0.0);
}

TEST_F(TraceStoreTest, FlippedPayloadByteFallsBack)
{
    const Program &program = workloadProgram("libquantum");
    auto key = trace_store::makeKey("libquantum", 30000, program);
    captureAndSave(key, program, 30000);

    std::string path = trace_store::artifactPath(key);
    std::vector<unsigned char> bytes = readFile(path);
    bytes[headerBytes + frameBytes + 5] ^= 0x40; // inside chunk 0
    writeFile(path, bytes);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    LiveSource live(program);
    TraceReplay replay(restored);
    expectSameStream(collect(live, 30000), collect(replay, 30000));
    EXPECT_EQ(trace_store::takeThreadCounters().fallbacks, 1u);
}

TEST_F(TraceStoreTest, StaleFormatVersionRejectedThenRewritten)
{
    const Program &program = workloadProgram("libquantum");
    auto key = trace_store::makeKey("libquantum", 30000, program);
    auto captured = captureAndSave(key, program, 30000);

    // Patch the version field (and re-seal the header CRC, so only the
    // version — not checksum validation — causes the rejection).
    std::string path = trace_store::artifactPath(key);
    std::vector<unsigned char> bytes = readFile(path);
    filePut32(bytes, versionOffset, trace_store::formatVersion + 1);
    filePut32(bytes, headerCrcOffset,
              crc32c(bytes.data(), headerCrcOffset));
    writeFile(path, bytes);

    EXPECT_EQ(trace_store::openArtifact(key, program), nullptr);
    trace_store::ThreadCounters counters =
        trace_store::takeThreadCounters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.fallbacks, 1u);

    // The stale artifact is overwritten, not trusted: a fresh save
    // (which re-validates under the lock) rewrites it in the current
    // format and the next lookup hits.
    EXPECT_TRUE(trace_store::saveArtifact(key, *captured));
    EXPECT_NE(trace_store::openArtifact(key, program), nullptr);
}

TEST_F(TraceStoreTest, PartialTmpFromKilledWriterIsIgnored)
{
    const Program &program = workloadProgram("libquantum");
    auto key = trace_store::makeKey("libquantum", 30000, program);
    std::filesystem::create_directories(dir);

    // A writer killed mid-save leaves only `<path>.tmp` — readers never
    // open it, so the lookup is a clean miss, not a fallback.
    std::string path = trace_store::artifactPath(key);
    writeFile(path + ".tmp", {'g', 'a', 'r', 'b', 'a', 'g', 'e'});
    EXPECT_EQ(trace_store::openArtifact(key, program), nullptr);
    trace_store::ThreadCounters counters =
        trace_store::takeThreadCounters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.fallbacks, 0u);

    // A completed save replaces the debris and publishes atomically.
    auto buffer = std::make_shared<TraceBuffer>(program);
    buffer->ensure(30000);
    EXPECT_TRUE(trace_store::saveArtifact(key, *buffer));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    EXPECT_NE(trace_store::openArtifact(key, program), nullptr);
}

// -------------------------------------------------- locking and growth

TEST_F(TraceStoreTest, SaveSkipsUnderContentionAndWhenCurrent)
{
    const Program &program = workloadProgram("libquantum");
    auto key = trace_store::makeKey("libquantum", 30000, program);
    std::filesystem::create_directories(dir);
    auto buffer = std::make_shared<TraceBuffer>(program);
    buffer->ensure(30000);

    // Simulate a concurrent writer holding the artifact lock.
    std::string lock_path = trace_store::artifactPath(key) + ".lock";
    int held = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
    ASSERT_GE(held, 0);
    ASSERT_EQ(::flock(held, LOCK_EX | LOCK_NB), 0);
    EXPECT_FALSE(trace_store::saveArtifact(key, *buffer));
    ::close(held); // releases the lock

    EXPECT_TRUE(trace_store::saveArtifact(key, *buffer));
    // Second save of an unchanged stream is skipped as up-to-date.
    EXPECT_FALSE(trace_store::saveArtifact(key, *buffer));
}

TEST_F(TraceStoreTest, DemandPastArtifactEndExtendsLiveAndRewrites)
{
    const Program &program = workloadProgram("mcf");
    auto key = trace_store::makeKey("mcf", 40000, program);
    captureAndSave(key, program, 20000);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    EXPECT_EQ(artifact->opCount(), 20000u);
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    LiveSource live(program);
    TraceReplay replay(restored);
    // Walk past the stored end: decode 20000, then live execution
    // resumes (fast-forward + extension) for the rest.
    expectSameStream(collect(live, 40000), collect(replay, 40000));

    // The grown buffer rewrites the artifact; a repeat save skips.
    EXPECT_TRUE(trace_store::saveArtifact(key, *restored));
    auto regrown = trace_store::openArtifact(key, program);
    ASSERT_NE(regrown, nullptr);
    EXPECT_EQ(regrown->opCount(), restored->size());
    EXPECT_GE(regrown->opCount(), 40000u);
    EXPECT_FALSE(trace_store::saveArtifact(key, *restored));
}

// ------------------------------------------------------- harness tiers

harness::RunOptions
quick()
{
    harness::RunOptions options;
    options.instructions = 20000;
    return options;
}

TEST_F(TraceStoreTest, TraceCacheKillSwitchBypassesBothTiers)
{
    harness::setTraceCacheEnabled(false);
    harness::runSingle("mcf", PrefetcherKind::None, quick());
    trace_store::Stats stats = trace_store::stats();
    // BFSIM_TRACE_CACHE=0 means not even a store lookup happens.
    EXPECT_EQ(stats.hits + stats.misses + stats.fallbacks, 0u);

    harness::setTraceCacheEnabled(true);
    harness::clearTraceCache();
    harness::runSingle("mcf", PrefetcherKind::None, quick());
    EXPECT_EQ(trace_store::stats().misses, 1u);
}

TEST_F(TraceStoreTest, CoreStatsBitIdenticalAcrossLiveMemoryAndDisk)
{
    // Reference: live execution, no trace sharing at all.
    harness::setTraceCacheEnabled(false);
    harness::SingleResult live =
        harness::runSingle("mcf", PrefetcherKind::BFetch, quick());

    // Memory tier only.
    harness::setTraceCacheEnabled(true);
    trace_store::setDirectory("");
    harness::clearTraceCache();
    harness::SingleResult memory =
        harness::runSingle("mcf", PrefetcherKind::BFetch, quick());
    EXPECT_EQ(std::memcmp(&live.core, &memory.core, sizeof(CoreStats)),
              0);

    // Disk tier, cold: capture live, persist at "batch end".
    trace_store::setDirectory(dir);
    harness::clearTraceCache();
    harness::takeThreadCacheCounters();
    harness::SingleResult cold =
        harness::runSingle("mcf", PrefetcherKind::BFetch, quick());
    harness::ThreadCacheCounters counters =
        harness::takeThreadCacheCounters();
    EXPECT_EQ(counters.traceDiskMisses, 1u);
    EXPECT_EQ(counters.traceDiskHits, 0u);
    EXPECT_EQ(std::memcmp(&live.core, &cold.core, sizeof(CoreStats)),
              0);
    EXPECT_GE(harness::persistTraceStore(), 1u);

    // Disk tier, warm: the artifact seeds the buffer; no capture.
    harness::clearTraceCache();
    harness::SingleResult warm =
        harness::runSingle("mcf", PrefetcherKind::BFetch, quick());
    counters = harness::takeThreadCacheCounters();
    EXPECT_EQ(counters.traceDiskHits, 1u);
    EXPECT_EQ(counters.traceDiskMisses, 0u);
    EXPECT_EQ(counters.traceFallbacks, 0u);
    EXPECT_EQ(std::memcmp(&live.core, &warm.core, sizeof(CoreStats)),
              0);
}

// ------------------------------------------------------ injected faults

TEST_F(TraceStoreTest, InjectedOpenFaultDegradesToCapture)
{
    harness::SingleResult reference =
        harness::runSingle("libquantum", PrefetcherKind::BFetch,
                           quick());
    EXPECT_GE(harness::persistTraceStore(), 1u);
    harness::clearTraceCache();
    harness::takeThreadCacheCounters();
    {
        // Seed 0 fires on the first trace_store site hit: artifact
        // open. The run must recapture live, bit-identically. Site hit
        // counters are per-thread and survive across armed windows
        // (batch jobs reset them via FaultScope); start fresh here.
        fault::beginScope(0);
        harness::ScopedFault armed(fault::Site::TraceStore, 0, 0);
        harness::SingleResult degraded =
            harness::runSingle("libquantum", PrefetcherKind::BFetch,
                               quick());
        EXPECT_TRUE(armed.fired());
        EXPECT_EQ(std::memcmp(&reference.core, &degraded.core,
                              sizeof(CoreStats)),
                  0);
    }
    harness::ThreadCacheCounters counters =
        harness::takeThreadCacheCounters();
    EXPECT_EQ(counters.traceDiskHits, 0u);
    EXPECT_EQ(counters.traceDiskMisses, 1u);
    EXPECT_EQ(counters.traceFallbacks, 1u);
}

TEST_F(TraceStoreTest, InjectedDecodeFaultDegradesMidStream)
{
    harness::SingleResult reference =
        harness::runSingle("libquantum", PrefetcherKind::BFetch,
                           quick());
    EXPECT_GE(harness::persistTraceStore(), 1u);
    harness::clearTraceCache();
    harness::takeThreadCacheCounters();

    // Site hit 1 is the successful artifact open; pick the seed whose
    // planned hit is the first decodeChunk call, so the fault strikes
    // after the reader is wired in and only internal degradation can
    // keep the run alive.
    std::uint64_t seed = 1;
    while (fault::plannedHit(seed) != 2)
        ++seed;
    {
        fault::beginScope(0); // fresh per-thread hit count (see above)
        harness::ScopedFault armed(fault::Site::TraceStore, 0, seed);
        harness::SingleResult degraded =
            harness::runSingle("libquantum", PrefetcherKind::BFetch,
                               quick());
        EXPECT_TRUE(armed.fired());
        EXPECT_EQ(std::memcmp(&reference.core, &degraded.core,
                              sizeof(CoreStats)),
                  0);
    }
    harness::ThreadCacheCounters counters =
        harness::takeThreadCacheCounters();
    EXPECT_EQ(counters.traceDiskHits, 1u); // the open itself succeeded
    EXPECT_EQ(counters.traceFallbacks, 1u);
}

} // namespace
} // namespace bfsim::sim
