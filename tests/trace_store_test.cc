/**
 * @file
 * On-disk trace store tests: artifact round-trips (bit-identical DynOp
 * streams and CoreStats across live / memory-trace / disk-trace
 * sources), the <=6 bytes-per-op size budget, every corruption shape
 * the format defends against (truncation, flipped payload bytes, stale
 * format versions, leftover partial .tmp files), single-writer lock
 * contention, growth rewrites, the BFSIM_TRACE_CACHE=0 bypass of both
 * tiers, and injected trace_store faults at open and decode time.
 */

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.hh"
#include "common/fault.hh"
#include "harness/experiment.hh"
#include "harness/fault.hh"
#include "isa/assembler.hh"
#include "sim/dyn_op_source.hh"
#include "sim/trace.hh"
#include "sim/trace_store.hh"
#include "workloads/workload.hh"

namespace bfsim::sim {
namespace {

using isa::Assembler;
using isa::Program;

/** Drain up to `max_ops` ops from a source. */
std::vector<DynOp>
collect(DynOpSource &source, std::uint64_t max_ops)
{
    std::vector<DynOp> ops;
    DynOp op;
    while (ops.size() < max_ops && source.next(op))
        ops.push_back(op);
    return ops;
}

void
expectSameStream(const std::vector<DynOp> &a, const std::vector<DynOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pcIndex, b[i].pcIndex) << "op " << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << "op " << i;
        EXPECT_EQ(a[i].inst, b[i].inst) << "op " << i;
        EXPECT_EQ(a[i].seq, b[i].seq) << "op " << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << "op " << i;
        EXPECT_EQ(a[i].targetPc, b[i].targetPc) << "op " << i;
        EXPECT_EQ(a[i].effAddr, b[i].effAddr) << "op " << i;
        EXPECT_EQ(a[i].writesReg, b[i].writesReg) << "op " << i;
        EXPECT_EQ(a[i].result, b[i].result) << "op " << i;
        if (testing::Test::HasFailure())
            return;
    }
}

/** A short program exercising branches, loads, stores, r0 and Halt. */
Program
mixedHaltingProgram()
{
    Assembler as;
    as.movi(isa::R1, 50);
    as.movi(isa::R2, 0x8000);
    as.movi(isa::R3, 0);
    as.label("loop");
    as.store(isa::R1, isa::R2, 0);
    as.load(isa::R4, isa::R2, 0);
    as.add(isa::R3, isa::R3, isa::R4);
    as.movi(isa::R0, 7);
    as.addi(isa::R2, isa::R2, 8);
    as.addi(isa::R1, isa::R1, -1);
    as.bne(isa::R1, isa::R0, "loop");
    as.halt();
    return as.assemble();
}

const Program &
workloadProgram(const char *name)
{
    return workloads::workloadByName(name).program;
}

std::vector<unsigned char>
readFile(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.good()) << path;
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(file),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(reinterpret_cast<const char *>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(file.good()) << path;
}

std::uint32_t
fileGet32(const std::vector<unsigned char> &bytes, std::size_t offset)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(bytes[offset + i]) << (i * 8);
    return v;
}

void
filePut32(std::vector<unsigned char> &bytes, std::size_t offset,
          std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes[offset + i] = static_cast<unsigned char>(v >> (i * 8));
}

/** Header geometry of format version 1 (mirrors trace_store.cc). */
constexpr std::size_t headerBytes = 48;
constexpr std::size_t versionOffset = 4;
constexpr std::size_t headerCrcOffset = 44;
constexpr std::size_t frameBytes = 12;

/** v2 trailer geometry (mirrors trace_store.cc). */
constexpr std::size_t footerBytes = 24;
constexpr std::size_t ckptSectionHeadBytes = 24;
constexpr std::size_t ckptRecordBytes =
    16 + std::size_t{numArchRegs} * 8 +
    std::size_t{trace_store::checkpointCacheSets} *
        trace_store::checkpointCacheWays * 8;

std::uint64_t
fileGet64(const std::vector<unsigned char> &bytes, std::size_t offset)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[offset + i]) << (i * 8);
    return v;
}

/** File offset of the v2 checkpoint section (after the chunk index). */
std::size_t
checkpointSectionOffset(const std::vector<unsigned char> &bytes)
{
    std::size_t footer = bytes.size() - footerBytes;
    std::uint64_t index_offset = fileGet64(bytes, footer + 8);
    std::uint32_t chunk_count = fileGet32(bytes, footer + 4);
    return index_offset + 12 + std::size_t{chunk_count} * 8;
}

/**
 * Every test runs against its own store directory with all process-wide
 * trace state (both cache tiers, their counters) reset around it.
 */
class TraceStoreTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "bfsim_trace_store/" +
              testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        std::filesystem::remove_all(dir);
        harness::clearMemoCaches();
        harness::clearTraceCache();
        harness::setTraceCacheEnabled(true);
        trace_store::setDirectory(dir);
        trace_store::setSaveFormatVersion(trace_store::formatVersion);
        trace_store::setCheckpointIntervalChunks(
            trace_store::checkpointEveryChunks);
        trace_store::resetStats();
        harness::takeThreadCacheCounters();
    }

    void
    TearDown() override
    {
        trace_store::setDirectory("");
        harness::clearMemoCaches();
        harness::clearTraceCache();
        harness::setTraceCacheEnabled(true);
        trace_store::setSaveFormatVersion(trace_store::formatVersion);
        trace_store::setCheckpointIntervalChunks(
            trace_store::checkpointEveryChunks);
        trace_store::resetStats();
        std::filesystem::remove_all(dir);
    }

    /** Capture `ops` ops of `program` and persist them as `key`. */
    std::shared_ptr<TraceBuffer>
    captureAndSave(const trace_store::Key &key, const Program &program,
                   std::uint64_t ops)
    {
        auto buffer = std::make_shared<TraceBuffer>(program);
        buffer->ensure(ops);
        EXPECT_TRUE(trace_store::saveArtifact(key, *buffer));
        return buffer;
    }

    std::string dir;
};

// ------------------------------------------------------------ round trip

TEST_F(TraceStoreTest, RoundTripHaltingProgramBitIdentical)
{
    Program program = mixedHaltingProgram();
    auto key = trace_store::makeKey("halting", 1000, program);

    auto captured = std::make_shared<TraceBuffer>(program);
    TraceReplay capture(captured);
    std::vector<DynOp> reference = collect(capture, 1 << 20);
    ASSERT_TRUE(captured->halted());
    ASSERT_TRUE(trace_store::saveArtifact(key, *captured));

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    EXPECT_EQ(artifact->opCount(), captured->size());
    EXPECT_TRUE(artifact->halted());

    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    TraceReplay replay(restored);
    expectSameStream(reference, collect(replay, 1 << 20));
    EXPECT_TRUE(replay.halted());
    EXPECT_TRUE(restored->halted());
    // The halt came from the artifact header: nothing executed live.
    EXPECT_EQ(restored->captureSeconds(), 0.0);
    EXPECT_EQ(trace_store::stats().hits, 1u);
}

TEST_F(TraceStoreTest, RoundTripWorkloadStreamWithinByteBudget)
{
    const Program &program = workloadProgram("mcf");
    auto key = trace_store::makeKey("mcf", 50000, program);
    auto captured = captureAndSave(key, program, 50000);

    trace_store::Stats stats = trace_store::stats();
    EXPECT_EQ(stats.opsWritten, captured->size());
    ASSERT_GT(stats.opsWritten, 0u);
    EXPECT_GT(stats.bytesPerOp(), 0.0);
    // The headline acceptance bound: well under the 21 B/op in-memory
    // layout, and under the 6 B/op format budget.
    EXPECT_LE(stats.bytesPerOp(), 6.0);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    LiveSource live(program);
    TraceReplay replay(restored);
    expectSameStream(collect(live, 50000), collect(replay, 50000));
    EXPECT_EQ(trace_store::takeThreadCounters().fallbacks, 0u);
}

// ----------------------------------------------------------- corruption

TEST_F(TraceStoreTest, TruncatedArtifactFallsBackMidStream)
{
    const Program &program = workloadProgram("mcf");
    auto key = trace_store::makeKey("mcf", 50000, program);
    // Save as v1: a truncated v2 artifact already fails its trailer
    // validation at open (see TruncatedTrailerRejectsArtifact); the
    // mid-stream degradation path under test here is how damage deeper
    // than the header surfaces for sequential-only v1 artifacts.
    trace_store::setSaveFormatVersion(1);
    captureAndSave(key, program, 50000);

    // Cut the file mid-way through the second chunk's payload: chunk 0
    // decodes cleanly from disk, chunk 1 trips the bounds check, and
    // the buffer must fast-forward live execution over the verified
    // prefix without the consumer noticing.
    std::string path = trace_store::artifactPath(key);
    std::vector<unsigned char> bytes = readFile(path);
    std::size_t chunk0 = fileGet32(bytes, headerBytes);
    std::size_t cut = headerBytes + frameBytes + chunk0 + frameBytes + 37;
    ASSERT_LT(cut, bytes.size());
    bytes.resize(cut);
    writeFile(path, bytes);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr); // header is intact; damage is deeper
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    LiveSource live(program);
    TraceReplay replay(restored);
    expectSameStream(collect(live, 50000), collect(replay, 50000));
    EXPECT_EQ(trace_store::takeThreadCounters().fallbacks, 1u);
    // The fast-forwarded re-execution is billed as capture time.
    EXPECT_GT(restored->captureSeconds(), 0.0);
}

TEST_F(TraceStoreTest, FlippedPayloadByteFallsBack)
{
    const Program &program = workloadProgram("libquantum");
    auto key = trace_store::makeKey("libquantum", 30000, program);
    captureAndSave(key, program, 30000);

    std::string path = trace_store::artifactPath(key);
    std::vector<unsigned char> bytes = readFile(path);
    bytes[headerBytes + frameBytes + 5] ^= 0x40; // inside chunk 0
    writeFile(path, bytes);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    LiveSource live(program);
    TraceReplay replay(restored);
    expectSameStream(collect(live, 30000), collect(replay, 30000));
    EXPECT_EQ(trace_store::takeThreadCounters().fallbacks, 1u);
}

TEST_F(TraceStoreTest, StaleFormatVersionRejectedThenRewritten)
{
    const Program &program = workloadProgram("libquantum");
    auto key = trace_store::makeKey("libquantum", 30000, program);
    auto captured = captureAndSave(key, program, 30000);

    // Patch the version field (and re-seal the header CRC, so only the
    // version — not checksum validation — causes the rejection).
    std::string path = trace_store::artifactPath(key);
    std::vector<unsigned char> bytes = readFile(path);
    filePut32(bytes, versionOffset, trace_store::formatVersion + 1);
    filePut32(bytes, headerCrcOffset,
              crc32c(bytes.data(), headerCrcOffset));
    writeFile(path, bytes);

    EXPECT_EQ(trace_store::openArtifact(key, program), nullptr);
    trace_store::ThreadCounters counters =
        trace_store::takeThreadCounters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.fallbacks, 1u);

    // The stale artifact is overwritten, not trusted: a fresh save
    // (which re-validates under the lock) rewrites it in the current
    // format and the next lookup hits.
    EXPECT_TRUE(trace_store::saveArtifact(key, *captured));
    EXPECT_NE(trace_store::openArtifact(key, program), nullptr);
}

TEST_F(TraceStoreTest, PartialTmpFromKilledWriterIsIgnored)
{
    const Program &program = workloadProgram("libquantum");
    auto key = trace_store::makeKey("libquantum", 30000, program);
    std::filesystem::create_directories(dir);

    // A writer killed mid-save leaves only `<path>.tmp` — readers never
    // open it, so the lookup is a clean miss, not a fallback.
    std::string path = trace_store::artifactPath(key);
    writeFile(path + ".tmp", {'g', 'a', 'r', 'b', 'a', 'g', 'e'});
    EXPECT_EQ(trace_store::openArtifact(key, program), nullptr);
    trace_store::ThreadCounters counters =
        trace_store::takeThreadCounters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.fallbacks, 0u);

    // A completed save replaces the debris and publishes atomically.
    auto buffer = std::make_shared<TraceBuffer>(program);
    buffer->ensure(30000);
    EXPECT_TRUE(trace_store::saveArtifact(key, *buffer));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    EXPECT_NE(trace_store::openArtifact(key, program), nullptr);
}

// -------------------------------------------------- locking and growth

TEST_F(TraceStoreTest, SaveSkipsUnderContentionAndWhenCurrent)
{
    const Program &program = workloadProgram("libquantum");
    auto key = trace_store::makeKey("libquantum", 30000, program);
    std::filesystem::create_directories(dir);
    auto buffer = std::make_shared<TraceBuffer>(program);
    buffer->ensure(30000);

    // Simulate a concurrent writer holding the artifact lock.
    std::string lock_path = trace_store::artifactPath(key) + ".lock";
    int held = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
    ASSERT_GE(held, 0);
    ASSERT_EQ(::flock(held, LOCK_EX | LOCK_NB), 0);
    EXPECT_FALSE(trace_store::saveArtifact(key, *buffer));
    ::close(held); // releases the lock

    EXPECT_TRUE(trace_store::saveArtifact(key, *buffer));
    // Second save of an unchanged stream is skipped as up-to-date.
    EXPECT_FALSE(trace_store::saveArtifact(key, *buffer));
}

TEST_F(TraceStoreTest, DemandPastArtifactEndExtendsLiveAndRewrites)
{
    const Program &program = workloadProgram("mcf");
    auto key = trace_store::makeKey("mcf", 40000, program);
    captureAndSave(key, program, 20000);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    EXPECT_EQ(artifact->opCount(), 20000u);
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(artifact));
    LiveSource live(program);
    TraceReplay replay(restored);
    // Walk past the stored end: decode 20000, then live execution
    // resumes (fast-forward + extension) for the rest.
    expectSameStream(collect(live, 40000), collect(replay, 40000));

    // The grown buffer rewrites the artifact; a repeat save skips.
    EXPECT_TRUE(trace_store::saveArtifact(key, *restored));
    auto regrown = trace_store::openArtifact(key, program);
    ASSERT_NE(regrown, nullptr);
    EXPECT_EQ(regrown->opCount(), restored->size());
    EXPECT_GE(regrown->opCount(), 40000u);
    EXPECT_FALSE(trace_store::saveArtifact(key, *restored));
}

// ------------------------------------------------------- harness tiers

harness::RunOptions
quick()
{
    harness::RunOptions options;
    options.instructions = 20000;
    return options;
}

TEST_F(TraceStoreTest, TraceCacheKillSwitchBypassesBothTiers)
{
    harness::setTraceCacheEnabled(false);
    harness::runSingle("mcf", "None", quick());
    trace_store::Stats stats = trace_store::stats();
    // BFSIM_TRACE_CACHE=0 means not even a store lookup happens.
    EXPECT_EQ(stats.hits + stats.misses + stats.fallbacks, 0u);

    harness::setTraceCacheEnabled(true);
    harness::clearTraceCache();
    harness::runSingle("mcf", "None", quick());
    EXPECT_EQ(trace_store::stats().misses, 1u);
}

TEST_F(TraceStoreTest, CoreStatsBitIdenticalAcrossLiveMemoryAndDisk)
{
    // Reference: live execution, no trace sharing at all.
    harness::setTraceCacheEnabled(false);
    harness::SingleResult live =
        harness::runSingle("mcf", "Bfetch", quick());

    // Memory tier only.
    harness::setTraceCacheEnabled(true);
    trace_store::setDirectory("");
    harness::clearTraceCache();
    harness::SingleResult memory =
        harness::runSingle("mcf", "Bfetch", quick());
    EXPECT_EQ(std::memcmp(&live.core, &memory.core, sizeof(CoreStats)),
              0);

    // Disk tier, cold: capture live, persist at "batch end".
    trace_store::setDirectory(dir);
    harness::clearTraceCache();
    harness::takeThreadCacheCounters();
    harness::SingleResult cold =
        harness::runSingle("mcf", "Bfetch", quick());
    harness::ThreadCacheCounters counters =
        harness::takeThreadCacheCounters();
    EXPECT_EQ(counters.traceDiskMisses, 1u);
    EXPECT_EQ(counters.traceDiskHits, 0u);
    EXPECT_EQ(std::memcmp(&live.core, &cold.core, sizeof(CoreStats)),
              0);
    EXPECT_GE(harness::persistTraceStore(), 1u);

    // Disk tier, warm: the artifact seeds the buffer; no capture.
    harness::clearTraceCache();
    harness::SingleResult warm =
        harness::runSingle("mcf", "Bfetch", quick());
    counters = harness::takeThreadCacheCounters();
    EXPECT_EQ(counters.traceDiskHits, 1u);
    EXPECT_EQ(counters.traceDiskMisses, 0u);
    EXPECT_EQ(counters.traceFallbacks, 0u);
    EXPECT_EQ(std::memcmp(&live.core, &warm.core, sizeof(CoreStats)),
              0);
}

// -------------------------------------------------------- format v2

TEST_F(TraceStoreTest, V1ArtifactStillDecodesAndUpgradesInPlace)
{
    const Program &program = workloadProgram("mcf");
    auto key = trace_store::makeKey("mcf", 50000, program);

    trace_store::setSaveFormatVersion(1);
    auto captured = captureAndSave(key, program, 50000);

    auto v1 = trace_store::openArtifact(key, program);
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->version(), 1u);
    EXPECT_FALSE(v1->seekable());
    EXPECT_TRUE(v1->checkpoints().empty());
    EXPECT_FALSE(v1->seekToChunk(0));
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(v1));
    LiveSource live(program);
    TraceReplay replay(restored);
    expectSameStream(collect(live, 50000), collect(replay, 50000));
    EXPECT_EQ(trace_store::takeThreadCounters().fallbacks, 0u);

    // Re-saving the same coverage at the current version upgrades the
    // artifact in place (equal coverage normally skips the save).
    trace_store::setSaveFormatVersion(trace_store::formatVersion);
    EXPECT_TRUE(trace_store::saveArtifact(key, *captured));
    auto v2 = trace_store::openArtifact(key, program);
    ASSERT_NE(v2, nullptr);
    EXPECT_EQ(v2->version(), trace_store::formatVersion);
    EXPECT_TRUE(v2->seekable());
    // ...and once current, an identical save is skipped again.
    EXPECT_FALSE(trace_store::saveArtifact(key, *captured));
}

TEST_F(TraceStoreTest, SeekToChunkMatchesSequentialDecode)
{
    const Program &program = workloadProgram("mcf");
    const std::uint64_t ops = 3 * TraceBuffer::chunkOps + 1234;
    auto key = trace_store::makeKey("mcf", ops, program);
    captureAndSave(key, program, ops);

    // Reference: full sequential decode of every column.
    auto seq = trace_store::openArtifact(key, program);
    ASSERT_NE(seq, nullptr);
    ASSERT_TRUE(seq->seekable());
    std::vector<std::uint32_t> ref_pc(seq->opCount());
    std::vector<Addr> ref_addr(seq->opCount());
    std::vector<RegVal> ref_result(seq->opCount());
    std::vector<std::uint8_t> ref_flags(seq->opCount());
    std::uint64_t at = 0;
    while (std::size_t got =
               seq->decodeChunk(ref_pc.data() + at, ref_addr.data() + at,
                                ref_result.data() + at,
                                ref_flags.data() + at)) {
        at += got;
    }
    ASSERT_EQ(at, seq->opCount());

    // Each chunk, seeked to directly, decodes the same bytes the
    // sequential walk produced at that position — in any order.
    auto rnd = trace_store::openArtifact(key, program);
    ASSERT_NE(rnd, nullptr);
    std::vector<std::uint32_t> pc(TraceBuffer::chunkOps);
    std::vector<Addr> addr(TraceBuffer::chunkOps);
    std::vector<RegVal> result(TraceBuffer::chunkOps);
    std::vector<std::uint8_t> flags(TraceBuffer::chunkOps);
    for (std::uint64_t chunk : {std::uint64_t{2}, std::uint64_t{0},
                                std::uint64_t{3}, std::uint64_t{1}}) {
        ASSERT_TRUE(rnd->seekToChunk(chunk));
        EXPECT_EQ(rnd->decoded(), chunk * TraceBuffer::chunkOps);
        std::size_t got = rnd->decodeChunk(pc.data(), addr.data(),
                                           result.data(), flags.data());
        ASSERT_GT(got, 0u);
        std::uint64_t base = chunk * TraceBuffer::chunkOps;
        for (std::size_t i = 0; i < got; ++i) {
            ASSERT_EQ(pc[i], ref_pc[base + i]) << "chunk " << chunk;
            ASSERT_EQ(addr[i], ref_addr[base + i]) << "chunk " << chunk;
            ASSERT_EQ(result[i], ref_result[base + i])
                << "chunk " << chunk;
            ASSERT_EQ(flags[i], ref_flags[base + i])
                << "chunk " << chunk;
        }
    }
    // Out-of-range seeks are rejected without moving the cursor.
    EXPECT_FALSE(rnd->seekToChunk(100));
}

TEST_F(TraceStoreTest, ArtifactWindowSourceMatchesLiveMidStream)
{
    const Program &program = workloadProgram("mcf");
    const std::uint64_t ops = 3 * TraceBuffer::chunkOps + 1234;
    auto key = trace_store::makeKey("mcf", ops, program);
    captureAndSave(key, program, ops);

    // A window straddling a chunk boundary, decoded via seek, must be
    // bit-identical (including absolute seq) to the same slice of a
    // live run.
    const std::uint64_t begin = TraceBuffer::chunkOps + 5000;
    const std::uint64_t end = 2 * TraceBuffer::chunkOps + 3000;
    LiveSource live(program);
    std::vector<DynOp> reference = collect(live, end);
    reference.erase(reference.begin(),
                    reference.begin() + static_cast<std::ptrdiff_t>(begin));

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    ArtifactWindowSource window(program, std::move(artifact), begin, end);
    std::vector<DynOp> slice = collect(window, end - begin);
    EXPECT_TRUE(window.halted());
    expectSameStream(reference, slice);
}

TEST_F(TraceStoreTest, CheckpointsMatchReconstructedArchState)
{
    const Program &program = workloadProgram("mcf");
    const std::uint64_t ops =
        (2 * trace_store::checkpointEveryChunks + 1) *
        TraceBuffer::chunkOps;
    auto key = trace_store::makeKey("mcf", ops, program);
    captureAndSave(key, program, ops);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    const auto &ckpts = artifact->checkpoints();
    ASSERT_EQ(ckpts.size(), 2u);

    // Independent reference: replay the stream and fold registers and
    // touched cache blocks exactly as an architectural observer would.
    auto buffer = std::make_shared<TraceBuffer>(program);
    TraceReplay replay(buffer);
    std::vector<DynOp> stream = collect(replay, ops);
    ASSERT_EQ(stream.size(), ops);

    std::size_t next = 0;
    std::array<RegVal, numArchRegs> regs{};
    std::vector<Addr> touched_blocks;
    for (std::uint64_t i = 0; i < ops && next < ckpts.size(); ++i) {
        if (ckpts[next].opIndex == i) {
            const trace_store::Checkpoint &ck = ckpts[next];
            EXPECT_EQ(ck.opIndex % TraceBuffer::chunkOps, 0u);
            EXPECT_EQ(ck.pcIndex, stream[i].pcIndex);
            EXPECT_EQ(ck.regs, regs);
            ASSERT_EQ(ck.cacheTags.size(),
                      std::size_t{trace_store::checkpointCacheSets} *
                          trace_store::checkpointCacheWays);
            for (Addr tag : ck.cacheTags) {
                if (tag == invalidAddr)
                    continue;
                EXPECT_NE(std::find(touched_blocks.begin(),
                                    touched_blocks.end(), tag),
                          touched_blocks.end())
                    << "checkpoint tag not in accessed-block set";
            }
            ++next;
        }
        const DynOp &op = stream[i];
        if (op.writesReg) {
            int rd = program.insts()[op.pcIndex].rd;
            if (rd != 0)
                regs[static_cast<std::size_t>(rd)] = op.result;
        }
        if (op.effAddr != 0)
            touched_blocks.push_back(blockNumber(op.effAddr));
    }
    EXPECT_EQ(next, ckpts.size());
}

TEST_F(TraceStoreTest, CheckpointIntervalKnobRoundTrip)
{
    const Program &program = workloadProgram("mcf");
    const std::uint64_t ops = 5 * TraceBuffer::chunkOps;
    auto key = trace_store::makeKey("mcf", ops, program);

    // Denser checkpoints: every 2 chunks instead of the default 4.
    trace_store::setCheckpointIntervalChunks(2);
    captureAndSave(key, program, ops);

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    const auto &ckpts = artifact->checkpoints();
    ASSERT_EQ(ckpts.size(), 2u);
    EXPECT_EQ(ckpts[0].opIndex, 2 * TraceBuffer::chunkOps);
    EXPECT_EQ(ckpts[1].opIndex, 4 * TraceBuffer::chunkOps);

    // The write-side stats account for the denser section.
    trace_store::Stats stats = trace_store::stats();
    EXPECT_EQ(stats.checkpointsWritten, 2u);
    EXPECT_EQ(stats.checkpointBytesWritten, 2 * ckptRecordBytes);

    // An interval of 0 is rejected, leaving the knob unchanged.
    trace_store::setCheckpointIntervalChunks(0);
    EXPECT_EQ(trace_store::checkpointIntervalChunks(), 2u);
}

TEST_F(TraceStoreTest, CheckpointIntervalKnobLeavesV1Unchanged)
{
    const Program &program = workloadProgram("libquantum");
    const std::uint64_t ops = 3 * TraceBuffer::chunkOps;
    auto key = trace_store::makeKey("libquantum", ops, program);

    trace_store::setCheckpointIntervalChunks(1);
    trace_store::setSaveFormatVersion(1);
    captureAndSave(key, program, ops);

    // v1 has no checkpoint section regardless of the interval knob,
    // and still decodes bit-identically.
    auto v1 = trace_store::openArtifact(key, program);
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->version(), 1u);
    EXPECT_TRUE(v1->checkpoints().empty());
    EXPECT_EQ(trace_store::stats().checkpointsWritten, 0u);
    auto restored =
        std::make_shared<TraceBuffer>(program, std::move(v1));
    LiveSource live(program);
    TraceReplay replay(restored);
    expectSameStream(collect(live, ops), collect(replay, ops));
}

TEST_F(TraceStoreTest, CaptureTimeCheckpointsMatchSavedArtifact)
{
    const Program &program = workloadProgram("mcf");
    const std::uint64_t ops =
        (2 * trace_store::checkpointEveryChunks + 1) *
        TraceBuffer::chunkOps;
    auto key = trace_store::makeKey("mcf", ops, program);

    // The live capture records checkpoints as the stream materialises;
    // saveArtifact independently reconstructs them by replaying the
    // stored columns. Interchangeability of the memory and disk tiers
    // under checkpoint-restored sampling rests on the two observers
    // producing byte-equal records.
    auto buffer = captureAndSave(key, program, ops);
    std::vector<trace_store::Checkpoint> live = buffer->checkpoints();

    auto artifact = trace_store::openArtifact(key, program);
    ASSERT_NE(artifact, nullptr);
    const auto &saved = artifact->checkpoints();
    ASSERT_EQ(live.size(), saved.size());
    ASSERT_GE(live.size(), 2u);
    for (std::size_t i = 0; i < live.size(); ++i) {
        EXPECT_EQ(live[i].opIndex, saved[i].opIndex) << "ckpt " << i;
        EXPECT_EQ(live[i].pcIndex, saved[i].pcIndex) << "ckpt " << i;
        EXPECT_EQ(live[i].regs, saved[i].regs) << "ckpt " << i;
        EXPECT_EQ(live[i].cacheTags, saved[i].cacheTags)
            << "ckpt " << i;
    }

    // checkpointAtOrBefore finds the newest covering record.
    trace_store::Checkpoint found;
    EXPECT_FALSE(buffer->checkpointAtOrBefore(
        trace_store::checkpointEveryChunks * TraceBuffer::chunkOps - 1,
        found));
    ASSERT_TRUE(buffer->checkpointAtOrBefore(ops - 1, found));
    EXPECT_EQ(found.opIndex, live.back().opIndex);
}

TEST_F(TraceStoreTest, BitFlippedCheckpointRejectsArtifactAndRunsLive)
{
    const Program &program = workloadProgram("libquantum");
    const std::uint64_t ops =
        (trace_store::checkpointEveryChunks + 1) * TraceBuffer::chunkOps;
    auto key = trace_store::makeKey("libquantum", ops, program);
    captureAndSave(key, program, ops);

    std::string path = trace_store::artifactPath(key);
    std::vector<unsigned char> bytes = readFile(path);
    // Flip one byte inside the first checkpoint's register image.
    std::size_t ckpt = checkpointSectionOffset(bytes);
    ASSERT_LT(ckpt + ckptSectionHeadBytes + ckptRecordBytes,
              bytes.size());
    bytes[ckpt + ckptSectionHeadBytes + 40] ^= 0x10;
    writeFile(path, bytes);

    // The whole artifact is rejected at open — no partially trusted
    // sections — and the stream is recaptured live, bit-identically.
    EXPECT_EQ(trace_store::openArtifact(key, program), nullptr);
    trace_store::ThreadCounters counters =
        trace_store::takeThreadCounters();
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.fallbacks, 1u);

    auto buffer = std::make_shared<TraceBuffer>(program);
    LiveSource live(program);
    TraceReplay replay(buffer);
    expectSameStream(collect(live, ops), collect(replay, ops));
}

TEST_F(TraceStoreTest, TruncatedTrailerRejectsArtifact)
{
    const Program &program = workloadProgram("libquantum");
    const std::uint64_t ops = 2 * TraceBuffer::chunkOps;
    auto key = trace_store::makeKey("libquantum", ops, program);
    captureAndSave(key, program, ops);

    std::string path = trace_store::artifactPath(key);
    std::vector<unsigned char> original = readFile(path);

    // Cutting anywhere in the v2 trailer — inside the footer, the
    // checkpoint section or the chunk index — must reject the artifact.
    for (std::size_t cut_back :
         {std::size_t{3}, footerBytes + 5, footerBytes + 200}) {
        std::vector<unsigned char> bytes = original;
        ASSERT_GT(bytes.size(), cut_back);
        bytes.resize(bytes.size() - cut_back);
        writeFile(path, bytes);
        EXPECT_EQ(trace_store::openArtifact(key, program), nullptr)
            << "cut_back " << cut_back;
    }

    // A flipped byte in the chunk-index offsets likewise rejects.
    std::vector<unsigned char> bytes = original;
    std::size_t footer = bytes.size() - footerBytes;
    std::uint64_t index_offset = fileGet64(bytes, footer + 8);
    bytes[index_offset + 12] ^= 0x01;
    writeFile(path, bytes);
    EXPECT_EQ(trace_store::openArtifact(key, program), nullptr);

    // Restoring the original bytes restores the artifact.
    writeFile(path, original);
    EXPECT_NE(trace_store::openArtifact(key, program), nullptr);
}

// ------------------------------------------------------ injected faults

TEST_F(TraceStoreTest, InjectedOpenFaultDegradesToCapture)
{
    harness::SingleResult reference =
        harness::runSingle("libquantum", "Bfetch",
                           quick());
    EXPECT_GE(harness::persistTraceStore(), 1u);
    harness::clearTraceCache();
    harness::takeThreadCacheCounters();
    {
        // Seed 0 fires on the first trace_store site hit: artifact
        // open. The run must recapture live, bit-identically. Site hit
        // counters are per-thread and survive across armed windows
        // (batch jobs reset them via FaultScope); start fresh here.
        fault::beginScope(0);
        harness::ScopedFault armed(fault::Site::TraceStore, 0, 0);
        harness::SingleResult degraded =
            harness::runSingle("libquantum", "Bfetch",
                               quick());
        EXPECT_TRUE(armed.fired());
        EXPECT_EQ(std::memcmp(&reference.core, &degraded.core,
                              sizeof(CoreStats)),
                  0);
    }
    harness::ThreadCacheCounters counters =
        harness::takeThreadCacheCounters();
    EXPECT_EQ(counters.traceDiskHits, 0u);
    EXPECT_EQ(counters.traceDiskMisses, 1u);
    EXPECT_EQ(counters.traceFallbacks, 1u);
}

TEST_F(TraceStoreTest, InjectedDecodeFaultDegradesMidStream)
{
    harness::SingleResult reference =
        harness::runSingle("libquantum", "Bfetch",
                           quick());
    EXPECT_GE(harness::persistTraceStore(), 1u);
    harness::clearTraceCache();
    harness::takeThreadCacheCounters();

    // Site hit 1 is the successful artifact open; pick the seed whose
    // planned hit is the first decodeChunk call, so the fault strikes
    // after the reader is wired in and only internal degradation can
    // keep the run alive.
    std::uint64_t seed = 1;
    while (fault::plannedHit(seed) != 2)
        ++seed;
    {
        fault::beginScope(0); // fresh per-thread hit count (see above)
        harness::ScopedFault armed(fault::Site::TraceStore, 0, seed);
        harness::SingleResult degraded =
            harness::runSingle("libquantum", "Bfetch",
                               quick());
        EXPECT_TRUE(armed.fired());
        EXPECT_EQ(std::memcmp(&reference.core, &degraded.core,
                              sizeof(CoreStats)),
                  0);
    }
    harness::ThreadCacheCounters counters =
        harness::takeThreadCacheCounters();
    EXPECT_EQ(counters.traceDiskHits, 1u); // the open itself succeeded
    EXPECT_EQ(counters.traceFallbacks, 1u);
}

} // namespace
} // namespace bfsim::sim
