/**
 * @file
 * B-Fetch component tests: ARF sequencing/visibility, BrTC linkage,
 * MHT learning (offsets, neg/posPatt, LoopDelta, shadow accuracy),
 * the per-load filter, and engine-level lookahead behaviour.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "core/arf.hh"
#include "core/bfetch.hh"
#include "core/brtc.hh"
#include "core/mht.hh"
#include "core/per_load_filter.hh"
#include "prefetch/queue.hh"

namespace bfsim::core {
namespace {

// ------------------------------------------------------------------ ARF

TEST(Arf, YoungerWritesWin)
{
    AlternateRegisterFile arf;
    arf.update(3, 100, /*seq=*/10, /*visible=*/0);
    arf.update(3, 200, /*seq=*/20, /*visible=*/0);
    EXPECT_EQ(arf.read(3, 1000), 200u);
}

TEST(Arf, StaleOutOfOrderWriteIsDropped)
{
    AlternateRegisterFile arf;
    arf.update(3, 200, /*seq=*/20, /*visible=*/0);
    arf.update(3, 100, /*seq=*/10, /*visible=*/0); // older, ignored
    EXPECT_EQ(arf.read(3, 1000), 200u);
    EXPECT_EQ(arf.sequence(3), 20u);
}

TEST(Arf, PendingValueInvisibleUntilProducerCompletes)
{
    AlternateRegisterFile arf;
    arf.update(5, 111, 1, /*visible=*/100);
    arf.update(5, 222, 2, /*visible=*/500);
    EXPECT_EQ(arf.read(5, 50), 0u);    // nothing visible yet
    EXPECT_EQ(arf.read(5, 200), 111u); // first write landed
    EXPECT_EQ(arf.read(5, 600), 222u); // second write landed
}

TEST(Arf, ResetClearsState)
{
    AlternateRegisterFile arf;
    arf.update(1, 42, 7, 0);
    arf.reset();
    EXPECT_EQ(arf.read(1, 1000), 0u);
    EXPECT_EQ(arf.sequence(1), 0u);
}

TEST(Arf, StorageMatchesTableI)
{
    // 0.156KB in Table I.
    double kb = AlternateRegisterFile::storageBits() / 8.0 / 1024.0;
    EXPECT_NEAR(kb, 0.156, 0.01);
}

// ----------------------------------------------------------------- BrTC

TEST(Brtc, LookupMissesUntilTrained)
{
    BranchTraceCache brtc(64);
    BlockKey key{0x400100, true, 0x400200};
    EXPECT_EQ(brtc.lookup(key), nullptr);
    brtc.update(key, 0x400300, 0x400400, true);
    const BrtcEntry *entry = brtc.lookup(key);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->nextBranchPc, 0x400300u);
    EXPECT_EQ(entry->nextTakenTarget, 0x400400u);
    EXPECT_TRUE(entry->nextIsConditional);
}

TEST(Brtc, DirectionDisambiguatesKeys)
{
    BranchTraceCache brtc(64);
    BlockKey taken{0x400100, true, 0x400200};
    BlockKey fallthrough{0x400100, false, 0x400104};
    brtc.update(taken, 0x400300, 0, false);
    brtc.update(fallthrough, 0x400500, 0, false);
    ASSERT_NE(brtc.lookup(taken), nullptr);
    ASSERT_NE(brtc.lookup(fallthrough), nullptr);
    EXPECT_EQ(brtc.lookup(taken)->nextBranchPc, 0x400300u);
    EXPECT_EQ(brtc.lookup(fallthrough)->nextBranchPc, 0x400500u);
}

TEST(Brtc, StorageMatchesTableI)
{
    BranchTraceCache brtc(256);
    double kb = brtc.storageBits() / 8.0 / 1024.0;
    EXPECT_NEAR(kb, 2.06, 0.05);
}

// ------------------------------------------------------------------ MHT

TEST(Mht, LearnsOffsetFromBranchTimeRegister)
{
    MemoryHistoryTable mht(128, 3, 5);
    BlockKey key{0x400100, true, 0x400200};
    mht.learn(key, /*reg=*/7, /*reg_at_branch=*/0x10000,
              /*ea=*/0x10020, /*hash=*/0x55);
    const MhtEntry *entry = mht.lookup(key);
    ASSERT_NE(entry, nullptr);
    ASSERT_TRUE(entry->regs[0].valid);
    EXPECT_EQ(entry->regs[0].regIdx, 7);
    EXPECT_EQ(entry->regs[0].offset, 0x20);
    EXPECT_EQ(entry->regs[0].loadPcHash, 0x55);
}

TEST(Mht, ShadowAccuracyReportsStableOffsets)
{
    MemoryHistoryTable mht(128, 3, 5);
    BlockKey key{0x400100, true, 0x400200};
    mht.learn(key, 7, 0x10000, 0x10020, 0x55);
    auto out = mht.learn(key, 7, 0x11000, 0x11020, 0x55);
    EXPECT_TRUE(out.hadPrior);
    EXPECT_TRUE(out.predictionAccurate);
    // Now an unpredictable jump: prior offset mispredicts.
    out = mht.learn(key, 7, 0x12000, 0x99000, 0x55);
    EXPECT_TRUE(out.hadPrior);
    EXPECT_FALSE(out.predictionAccurate);
}

TEST(Mht, LoopDeltaTracksConsecutiveEas)
{
    MemoryHistoryTable mht(128, 3, 5);
    BlockKey key{0x400100, true, 0x400200};
    mht.learn(key, 7, 0x10000, 0x10000, 0x55);
    mht.learn(key, 7, 0x10040, 0x10040, 0x55);
    const MhtEntry *entry = mht.lookup(key);
    EXPECT_EQ(entry->regs[0].loopDelta, 0x40);
}

TEST(Mht, SecondaryLoadsSetPattBits)
{
    MemoryHistoryTable mht(128, 3, 5);
    BlockKey key{0x400100, true, 0x400200};
    mht.learn(key, 7, 0x10000, 0x10000, 0x55); // primary
    mht.learn(key, 7, 0x10000, 0x10080, 0x66); // +2 blocks
    mht.learn(key, 7, 0x10000, 0x0ffc0, 0x77); // -1 block
    const MhtEntry *entry = mht.lookup(key);
    EXPECT_EQ(entry->regs[0].posPatt, 1u << 1);
    EXPECT_EQ(entry->regs[0].negPatt, 1u << 0);
}

TEST(Mht, PattBitsBeyondRangeAreIgnored)
{
    MemoryHistoryTable mht(128, 3, 5);
    BlockKey key{0x400100, true, 0x400200};
    mht.learn(key, 7, 0x10000, 0x10000, 0x55);
    mht.learn(key, 7, 0x10000, 0x10000 + 7 * 64, 0x66); // beyond 5
    const MhtEntry *entry = mht.lookup(key);
    EXPECT_EQ(entry->regs[0].posPatt, 0u);
}

TEST(Mht, TracksUpToThreeRegisters)
{
    MemoryHistoryTable mht(128, 3, 5);
    BlockKey key{0x400100, true, 0x400200};
    for (RegIndex r = 1; r <= 4; ++r)
        mht.learn(key, r, 0x1000 * r, 0x1000 * r + 8, r);
    const MhtEntry *entry = mht.lookup(key);
    int valid = 0;
    for (const auto &reg : entry->regs)
        valid += reg.valid;
    EXPECT_EQ(valid, 3);
}

TEST(Mht, StorageNearTableIBudget)
{
    MemoryHistoryTable mht(128, 3, 5);
    double kb = mht.storageBits() / 8.0 / 1024.0;
    // Table I says 4.5KB; we carry an extra 10-bit load-PC hash per
    // sub-entry (documented in mht.hh).
    EXPECT_GT(kb, 4.3);
    EXPECT_LT(kb, 5.2);
}

// ---------------------------------------------------------- Per-load

TEST(PerLoadFilter, NewLoadsStartAtThreshold)
{
    PerLoadFilter filter(2048, 3);
    EXPECT_EQ(filter.confidence(0x101), 3u);
    EXPECT_TRUE(filter.allows(0x101, 3));
}

TEST(PerLoadFilter, UselessPrefetchesSuppress)
{
    PerLoadFilter filter(2048, 3);
    filter.train(0x101, false);
    EXPECT_FALSE(filter.allows(0x101, 3));
}

TEST(PerLoadFilter, UsefulPrefetchesRaiseConfidence)
{
    PerLoadFilter filter(2048, 3);
    for (int i = 0; i < 5; ++i)
        filter.train(0x101, true);
    EXPECT_GT(filter.confidence(0x101), 3u);
    // A single useless event no longer suppresses.
    filter.train(0x101, false);
    EXPECT_TRUE(filter.allows(0x101, 3));
}

TEST(PerLoadFilter, CountersSaturate)
{
    PerLoadFilter filter(2048, 3);
    for (int i = 0; i < 100; ++i)
        filter.train(0x101, true);
    EXPECT_EQ(filter.confidence(0x101), 21u); // 3 x 7
    for (int i = 0; i < 100; ++i)
        filter.train(0x101, false);
    EXPECT_EQ(filter.confidence(0x101), 0u);
}

TEST(PerLoadFilter, DistinctLoadsAreIndependent)
{
    PerLoadFilter filter(2048, 3);
    filter.train(0x101, false);
    filter.train(0x101, false);
    EXPECT_TRUE(filter.allows(0x202, 3));
}

TEST(PerLoadFilter, StorageMatchesTableI)
{
    PerLoadFilter filter(2048, 3);
    double kb = filter.storageBits() / 8.0 / 1024.0;
    EXPECT_NEAR(kb, 2.25, 0.01); // 3 tables x 2048 x 3 bits
}

// --------------------------------------------------------------- Engine

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : bp(branch::makeTournamentPredictor()), queue(100),
          engine(BFetchConfig{}, *bp, queue)
    {
    }

    /** Commit a branch with perfect prediction bookkeeping. */
    void
    commitBranch(Addr pc, bool taken, Addr target)
    {
        engine.onCommitBranch(pc, taken, target, true, true);
        bp->update(pc, taken);
    }

    std::unique_ptr<branch::DirectionPredictor> bp;
    prefetch::PrefetchQueue queue;
    BFetchEngine engine;
};

TEST_F(EngineTest, LearnsAndPrefetchesASimpleLoop)
{
    // Simulate commits of: loop { load r7; branch back } with the base
    // register advancing 64B per iteration, then decode-stage walks.
    Addr branch_pc = 0x400140;
    Addr loop_head = 0x400100;
    RegVal reg = 0x100000;
    for (int iter = 0; iter < 50; ++iter) {
        commitBranch(branch_pc, true, loop_head);
        engine.onCommitRegWrite(7, reg);
        engine.onCommitMem(0x400110, 7, reg, true);
        engine.onRegWrite(7, reg, iter + 1, /*visible=*/iter);
        reg += 64;
    }
    // A decode-time walk from the loop branch should now generate
    // loop-ahead prefetches.
    engine.onDecodeBranch(branch_pc, true, loop_head, true, 10000);
    EXPECT_GT(engine.stats().prefetchesGenerated, 0u);
    EXPECT_GT(engine.stats().loopPrefetches, 0u);
    EXPECT_FALSE(queue.empty());
}

TEST_F(EngineTest, BrtcMissStopsTheWalk)
{
    // An unconditional seed carries full confidence, so the walk must
    // end on the untrained BrTC, not on path confidence.
    engine.onDecodeBranch(0x400100, true, 0x400200, false, 0);
    EXPECT_EQ(engine.stats().stopsBrtcMiss, 1u);
}

TEST_F(EngineTest, UntrainedConditionalSeedStopsOnConfidence)
{
    engine.onDecodeBranch(0x400100, true, 0x400200, true, 0);
    EXPECT_EQ(engine.stats().stopsConfidence, 1u);
}

TEST_F(EngineTest, StorageReportMatchesPaperShape)
{
    auto report = engine.storageReport();
    ASSERT_EQ(report.size(), 7u);
    double total = 0.0;
    for (const auto &component : report)
        total += component.kilobytes;
    // Paper Table I: 12.84KB total (ours slightly above; see mht.hh).
    EXPECT_GT(total, 11.5);
    EXPECT_LT(total, 14.5);
    EXPECT_EQ(report[0].name, "Branch Trace Cache");
    EXPECT_EQ(report[0].entries, 256u);
}

TEST_F(EngineTest, FeedbackTrainsTheFilter)
{
    unsigned before = engine.perLoadFilter().confidence(0x3a);
    engine.onPrefetchFeedback(0x3a, false);
    EXPECT_LT(engine.perLoadFilter().confidence(0x3a), before);
}

TEST_F(EngineTest, DisabledFilterConfigIgnoresFeedback)
{
    BFetchConfig cfg;
    cfg.enablePerLoadFilter = false;
    BFetchEngine e2(cfg, *bp, queue);
    e2.onPrefetchFeedback(0x3a, false);
    EXPECT_EQ(e2.perLoadFilter().confidence(0x3a), 3u);
}

TEST_F(EngineTest, AverageLookaheadDepthIsBounded)
{
    Addr branch_pc = 0x400140;
    Addr loop_head = 0x400100;
    for (int iter = 0; iter < 100; ++iter)
        commitBranch(branch_pc, true, loop_head);
    for (int i = 0; i < 10; ++i)
        engine.onDecodeBranch(branch_pc, true, loop_head, true, i);
    EXPECT_LE(engine.averageLookaheadDepth(),
              engine.config().maxLookaheadDepth);
}

} // namespace
} // namespace bfsim::core
