/**
 * @file
 * Confidence estimation tests: the composite (JRS + up-down + self)
 * estimator's calibration behaviour and the multiplicative path
 * confidence accumulator that throttles B-Fetch's lookahead.
 */

#include <gtest/gtest.h>

#include "branch/confidence.hh"

namespace bfsim::branch {
namespace {

TEST(CompositeConfidence, LevelStartsLowAndGrows)
{
    CompositeConfidence conf;
    Addr pc = 0x400100;
    unsigned initial = conf.level(pc, 0);
    for (int i = 0; i < 100; ++i)
        conf.train(pc, 0, true);
    EXPECT_GT(conf.level(pc, 0), initial);
    EXPECT_EQ(conf.level(pc, 0), conf.maxLevel());
}

TEST(CompositeConfidence, MispredictionsDepressLevel)
{
    CompositeConfidence conf;
    Addr pc = 0x400100;
    for (int i = 0; i < 100; ++i)
        conf.train(pc, 0, true);
    unsigned high = conf.level(pc, 0);
    for (int i = 0; i < 30; ++i)
        conf.train(pc, 0, false);
    EXPECT_LT(conf.level(pc, 0), high);
}

TEST(CompositeConfidence, EstimateIsAProbability)
{
    CompositeConfidence conf;
    for (int i = 0; i < 1000; ++i)
        conf.train(0x400100, 0, i % 4 != 0);
    double p = conf.estimate(0x400100, 0);
    EXPECT_GE(p, 0.5);
    EXPECT_LT(p, 1.0);
}

TEST(CompositeConfidence, CalibrationTracksObservedAccuracy)
{
    CompositeConfidence conf;
    Addr good = 0x400100, bad = 0x400800;
    // Good branch: always correct. Bad branch: 50/50.
    for (int i = 0; i < 4000; ++i) {
        conf.train(good, 0, true);
        conf.train(bad, 0, (i & 1) != 0);
    }
    EXPECT_GT(conf.estimate(good, 0), 0.95);
    EXPECT_LT(conf.estimate(bad, 0), 0.85);
    EXPECT_GT(conf.estimate(good, 0), conf.estimate(bad, 0));
}

TEST(CompositeConfidence, EstimateIsSideEffectFree)
{
    CompositeConfidence conf;
    for (int i = 0; i < 200; ++i)
        conf.train(0x400100, i, i % 5 != 0);
    double first = conf.estimate(0x400100, 7);
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(conf.estimate(0x400100, 7), first);
}

TEST(CompositeConfidence, StorageAccounting)
{
    ConfidenceConfig cfg;
    CompositeConfidence conf(cfg);
    std::size_t expected = cfg.jrsEntries * cfg.jrsBits +
                           cfg.upDownEntries * cfg.upDownBits +
                           cfg.selfEntries * cfg.selfBits;
    EXPECT_EQ(conf.storageBits(), expected);
}

TEST(CompositeConfidence, MaxLevelSumsCounterMaxima)
{
    ConfidenceConfig cfg;
    cfg.jrsBits = 4;
    cfg.upDownBits = 4;
    cfg.selfBits = 4;
    CompositeConfidence conf(cfg);
    EXPECT_EQ(conf.maxLevel(), 45u);
}

TEST(PathConfidence, StartsAtFullConfidence)
{
    PathConfidence path(0.75);
    EXPECT_DOUBLE_EQ(path.value(), 1.0);
    EXPECT_TRUE(path.aboveThreshold());
}

TEST(PathConfidence, AccumulatesMultiplicatively)
{
    PathConfidence path(0.75);
    path.accumulate(0.9);
    path.accumulate(0.9);
    EXPECT_NEAR(path.value(), 0.81, 1e-12);
    EXPECT_TRUE(path.aboveThreshold());
    path.accumulate(0.9);
    EXPECT_FALSE(path.aboveThreshold());
}

TEST(PathConfidence, ResetRestoresFullConfidence)
{
    PathConfidence path(0.75);
    path.accumulate(0.1);
    EXPECT_FALSE(path.aboveThreshold());
    path.reset();
    EXPECT_TRUE(path.aboveThreshold());
}

TEST(PathConfidence, ThresholdControlsDepth)
{
    // With per-branch confidence p, the admissible depth is
    // floor(log(threshold)/log(p)); check the paper's intuition that a
    // lower threshold admits deeper walks.
    auto depth_at = [](double threshold, double p) {
        PathConfidence path(threshold);
        int depth = 0;
        while (true) {
            path.accumulate(p);
            if (!path.aboveThreshold())
                break;
            ++depth;
        }
        return depth;
    };
    EXPECT_GT(depth_at(0.45, 0.97), depth_at(0.75, 0.97));
    EXPECT_GT(depth_at(0.75, 0.97), depth_at(0.90, 0.97));
    EXPECT_GT(depth_at(0.75, 0.99), depth_at(0.75, 0.9));
}

} // namespace
} // namespace bfsim::branch
