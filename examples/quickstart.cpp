/**
 * @file
 * Quickstart: simulate one workload under the baseline, Stride, SMS and
 * B-Fetch prefetchers and print the headline numbers. This is the
 * smallest end-to-end use of the library's public API:
 *
 *   workloads::workloadByName -> harness::runSingle -> CoreStats.
 *
 * Usage: quickstart [workload] [instructions]
 *   defaults: libquantum, 1000000
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace bfsim;

    std::string name = argc > 1 ? argv[1] : "libquantum";
    harness::RunOptions options;
    options.instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000'000;

    const workloads::Workload &workload = workloads::workloadByName(name);
    std::printf("workload:  %s  (%s)\n", workload.name.c_str(),
                workload.character.c_str());
    std::printf("footprint: %.1f MB, %llu instructions simulated\n\n",
                static_cast<double>(workload.footprintBytes) / 1048576.0,
                static_cast<unsigned long long>(options.instructions));

    const std::string kinds[] = {"None", "Stride", "SMS", "Bfetch"};

    double base_ipc = 0.0;
    std::printf("%-8s %8s %9s %9s %10s %10s %10s\n", "scheme", "IPC",
                "speedup", "L1 hit%", "pf issued", "pf useful",
                "pf useless");
    for (const std::string &kind : kinds) {
        harness::SingleResult r =
            harness::runSingle(name, kind, options);
        if (kind == "None")
            base_ipc = r.core.ipc;
        double l1_pct = r.mem.accesses
                            ? 100.0 * static_cast<double>(r.mem.l1Hits) /
                                  static_cast<double>(r.mem.accesses)
                            : 0.0;
        std::printf("%-8s %8.3f %8.2fx %8.1f%% %10llu %10llu %10llu\n",
                    sim::prefetcherName(kind).c_str(), r.core.ipc,
                    r.core.ipc / base_ipc, l1_pct,
                    static_cast<unsigned long long>(
                        r.mem.prefetchesIssued),
                    static_cast<unsigned long long>(
                        r.mem.usefulPrefetches),
                    static_cast<unsigned long long>(
                        r.mem.uselessPrefetches));
    }
    return 0;
}
