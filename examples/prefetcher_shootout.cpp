/**
 * @file
 * Prefetcher shootout: run every scheme (including Next-N and Perfect)
 * over a chosen subset of the suite and print a side-by-side speedup /
 * accuracy comparison — a compact version of the paper's whole
 * single-threaded evaluation, useful for exploring configuration
 * changes interactively.
 *
 * Usage: prefetcher_shootout [instructions] [workload...]
 *   defaults: 300000 instructions (or BFSIM_INSTRUCTIONS),
 *   {libquantum, mcf, milc, gromacs}. The sweep fans out across
 *   BFSIM_JOBS worker threads before the tables print.
 */

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace bfsim;

    harness::RunOptions options;
    options.instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                 : harness::benchInstructionBudget(300'000);
    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"libquantum", "mcf", "milc", "gromacs"};

    const std::string kinds[] = {"NextN", "Stride", "SMS", "Bfetch",
                                 "Perfect"};

    // Fan the whole sweep (incl. the no-prefetch baselines) across the
    // batch runner; the table loop below then reads memoized results.
    std::vector<harness::BatchJob> jobs;
    for (const std::string &name : names) {
        jobs.push_back(harness::BatchJob::single(name, "None", options));
        for (const std::string &kind : kinds)
            jobs.push_back(
                harness::BatchJob::single(name, kind, options));
    }
    harness::runBatch(jobs);

    for (const std::string &name : names) {
        const workloads::Workload &workload =
            workloads::workloadByName(name);
        std::printf("--- %s: %s ---\n", workload.name.c_str(),
                    workload.character.c_str());
        TextTable table({"scheme", "speedup", "issued", "useful",
                         "useless", "accuracy"});
        for (const std::string &kind : kinds) {
            const harness::SingleResult &r =
                harness::runSingleCached(name, kind, options);
            double speedup =
                harness::speedupVsBaseline(name, kind, options);
            double denom = static_cast<double>(r.mem.usefulPrefetches +
                                               r.mem.uselessPrefetches);
            double accuracy =
                denom > 0 ? static_cast<double>(r.mem.usefulPrefetches) /
                                denom
                          : 0.0;
            table.addRow({sim::prefetcherName(kind),
                          TextTable::fmt(speedup, 2) + "x",
                          TextTable::fmt(r.mem.prefetchesIssued),
                          TextTable::fmt(r.mem.usefulPrefetches),
                          TextTable::fmt(r.mem.uselessPrefetches),
                          TextTable::fmt(100.0 * accuracy, 1) + "%"});
        }
        table.print(std::cout);
        std::printf("\n");
    }
    return 0;
}
