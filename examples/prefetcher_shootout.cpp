/**
 * @file
 * Prefetcher shootout: run every scheme (including Next-N and Perfect)
 * over a chosen subset of the suite and print a side-by-side speedup /
 * accuracy comparison — a compact version of the paper's whole
 * single-threaded evaluation, useful for exploring configuration
 * changes interactively.
 *
 * Usage: prefetcher_shootout [instructions] [workload...]
 *   defaults: 300000 instructions, {libquantum, mcf, milc, gromacs}.
 */

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace bfsim;

    harness::RunOptions options;
    options.instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;
    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"libquantum", "mcf", "milc", "gromacs"};

    const sim::PrefetcherKind kinds[] = {
        sim::PrefetcherKind::NextN,  sim::PrefetcherKind::Stride,
        sim::PrefetcherKind::Sms,    sim::PrefetcherKind::BFetch,
        sim::PrefetcherKind::Perfect,
    };

    for (const std::string &name : names) {
        const workloads::Workload &workload =
            workloads::workloadByName(name);
        std::printf("--- %s: %s ---\n", workload.name.c_str(),
                    workload.character.c_str());
        TextTable table({"scheme", "speedup", "issued", "useful",
                         "useless", "accuracy"});
        for (sim::PrefetcherKind kind : kinds) {
            const harness::SingleResult &r =
                harness::runSingleCached(name, kind, options);
            double speedup =
                harness::speedupVsBaseline(name, kind, options);
            double denom = static_cast<double>(r.mem.usefulPrefetches +
                                               r.mem.uselessPrefetches);
            double accuracy =
                denom > 0 ? static_cast<double>(r.mem.usefulPrefetches) /
                                denom
                          : 0.0;
            table.addRow({sim::prefetcherName(kind),
                          TextTable::fmt(speedup, 2) + "x",
                          TextTable::fmt(r.mem.prefetchesIssued),
                          TextTable::fmt(r.mem.usefulPrefetches),
                          TextTable::fmt(r.mem.uselessPrefetches),
                          TextTable::fmt(100.0 * accuracy, 1) + "%"});
        }
        table.print(std::cout);
        std::printf("\n");
    }
    return 0;
}
