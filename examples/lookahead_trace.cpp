/**
 * @file
 * B-Fetch internals viewer: run one workload with B-Fetch and dump the
 * engine's learned state — BrTC linkage hit behaviour, MHT register
 * histories, lookahead statistics and per-load filter outcomes —
 * followed by a short disassembly of the kernel. Shows *why* B-Fetch
 * behaves as it does on a given program, mirroring the walk through the
 * paper's Fig. 2 example.
 *
 * Usage: lookahead_trace [workload] [instructions]
 *   defaults: libquantum, 200000.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "harness/experiment.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace bfsim;

    std::string name = argc > 1 ? argv[1] : "libquantum";
    harness::RunOptions options;
    options.instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;

    const workloads::Workload &workload =
        workloads::workloadByName(name);
    harness::SingleResult r =
        harness::runSingle(name, "Bfetch", options);

    std::printf("=== B-Fetch on %s (%llu instructions) ===\n\n",
                name.c_str(),
                static_cast<unsigned long long>(options.instructions));

    std::printf("kernel listing (first 40 instructions):\n");
    std::istringstream listing(workload.program.listing());
    std::string line;
    for (int i = 0; i < 40 && std::getline(listing, line); ++i)
        std::printf("  %s\n", line.c_str());

    const core::BFetchStats &s = r.bfetch;
    std::printf("\nlookahead:\n");
    std::printf("  walks started:        %llu\n",
                static_cast<unsigned long long>(s.lookaheadWalks));
    std::printf("  blocks visited:       %llu (avg depth %.2f BB)\n",
                static_cast<unsigned long long>(s.blocksVisited),
                r.avgLookaheadDepth);
    std::printf("  stops: confidence=%llu brtc-miss=%llu depth=%llu\n",
                static_cast<unsigned long long>(s.stopsConfidence),
                static_cast<unsigned long long>(s.stopsBrtcMiss),
                static_cast<unsigned long long>(s.stopsDepth));

    std::printf("\nprefetch generation:\n");
    std::printf("  candidates generated: %llu (loop: %llu, "
                "neg/posPatt: %llu)\n",
                static_cast<unsigned long long>(s.prefetchesGenerated),
                static_cast<unsigned long long>(s.loopPrefetches),
                static_cast<unsigned long long>(s.pattPrefetches));
    std::printf("  suppressed by filter: %llu\n",
                static_cast<unsigned long long>(s.filteredByPerLoad));
    std::printf("  issued to L1-D:       %llu (useful %llu, useless "
                "%llu, late %llu)\n",
                static_cast<unsigned long long>(r.mem.prefetchesIssued),
                static_cast<unsigned long long>(r.mem.usefulPrefetches),
                static_cast<unsigned long long>(
                    r.mem.uselessPrefetches),
                static_cast<unsigned long long>(r.mem.latePrefetches));

    std::printf("\nlearning:\n");
    std::printf("  BrTC updates:         %llu\n",
                static_cast<unsigned long long>(s.brtcUpdates));
    std::printf("  MHT learn updates:    %llu\n",
                static_cast<unsigned long long>(s.mhtLearnUpdates));

    double base_ipc =
        harness::runSingleCached(name, "None", options).core.ipc;
    std::printf("\nresult: IPC %.3f vs baseline %.3f -> speedup "
                "%.2fx\n",
                r.core.ipc, base_ipc, r.core.ipc / base_ipc);
    return 0;
}
