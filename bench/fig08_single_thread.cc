/**
 * @file
 * Fig. 8: single-threaded workload speedups of Stride, SMS and B-Fetch
 * over the no-prefetch baseline (paper: B-Fetch geomean 23.2% vs SMS
 * 19.7%; 50.0% vs 41.5% over the prefetch-sensitive subset). Our shape
 * target is the ordering B-Fetch > SMS > Stride and the per-benchmark
 * winners (SMS on cactusADM / milc / zeusmp).
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

void
printReport()
{
    harness::RunOptions options = benchutil::singleOptions();
    std::vector<harness::SpeedupSeries> series;
    for (const std::string &kind : benchutil::comparedSchemes()) {
        harness::SpeedupSeries s{sim::prefetcherName(kind), {}};
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            s.values[w.name] =
                harness::speedupVsBaseline(w.name, kind, options);
        }
        series.push_back(std::move(s));
    }
    std::printf("\n=== Figure 8: single-threaded speedups ===\n\n");
    harness::speedupTable(benchutil::suiteWorkloadNames(),
                          benchutil::suiteSensitiveNames(), series)
        .print(std::cout);

    // Supplementary: the average lookahead depth the paper quotes
    // ("average lookahead depth is 8 BB with 0.75 path confidence").
    double depth_total = 0.0;
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        depth_total += harness::runSingleCached(
                           w.name, "Bfetch", options)
                           .avgLookaheadDepth;
    }
    std::printf("\naverage B-Fetch lookahead depth: %.2f BB "
                "(paper: ~8)\n",
                depth_total / benchutil::suiteWorkloads().size());
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    harness::RunOptions options = benchutil::singleOptions();

    std::vector<harness::BatchJob> jobs;
    benchutil::appendSpeedupSweep(jobs, "fig08",
                                  benchutil::comparedSchemes(),
                                  options);
    benchutil::runSweep("fig08", config, jobs);

    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        for (const std::string &kind : benchutil::comparedSchemes()) {
            benchutil::registerCase(
                "fig08/" + w.name + "/" + sim::prefetcherName(kind),
                "speedup", [name = w.name, kind, options] {
                    return harness::speedupVsBaseline(name, kind,
                                                      options);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
