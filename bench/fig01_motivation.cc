/**
 * @file
 * Fig. 1: speedup of the Stride, SMS and Perfect prefetchers over the
 * no-prefetch baseline, per benchmark plus Geomean and the
 * prefetch-sensitive Geomean. Establishes the motivation headroom
 * (paper: Perfect ~2x geomean) and which benchmarks are
 * prefetch-insensitive.
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

void
printReport()
{
    harness::RunOptions options = benchutil::singleOptions();
    std::vector<harness::SpeedupSeries> series{
        {"Stride", {}}, {"SMS", {}}, {"Perfect", {}}};
    const std::string kinds[] = {"Stride", "SMS", "Perfect"};
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        for (int k = 0; k < 3; ++k) {
            series[k].values[w.name] =
                harness::speedupVsBaseline(w.name, kinds[k], options);
        }
    }
    std::printf("\n=== Figure 1: Stride / SMS / Perfect speedup vs "
                "no-prefetch baseline ===\n\n");
    harness::speedupTable(benchutil::suiteWorkloadNames(),
                          benchutil::suiteSensitiveNames(), series)
        .print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    harness::RunOptions options = benchutil::singleOptions();

    std::vector<harness::BatchJob> jobs;
    benchutil::appendSpeedupSweep(jobs, "fig01",
                                  {"Stride", "SMS", "Perfect"},
                                  options);
    benchutil::runSweep("fig01", config, jobs);

    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        for (const char *kind : {"Stride", "SMS", "Perfect"}) {
            benchutil::registerCase(
                "fig01/" + w.name + "/" + sim::prefetcherName(kind),
                "speedup", [name = w.name, kind, options] {
                    return harness::speedupVsBaseline(name, kind,
                                                      options);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
