/**
 * @file
 * Ablation of the ARF update policy: execute-stage sampled (the
 * design) versus retire-stage architectural copy. The paper (IV-B.2)
 * reports "significant improvement in performance versus a
 * retire-stage, purely architectural-state, register file copy"; this
 * bench quantifies that claim on our suite.
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

harness::RunOptions
optionsFor(bool commit_only)
{
    harness::RunOptions options = benchutil::singleOptions();
    options.bfetch.arfFromCommitOnly = commit_only;
    return options;
}

void
printReport()
{
    std::vector<harness::SpeedupSeries> series;
    for (bool commit_only : {false, true}) {
        harness::SpeedupSeries s{
            commit_only ? "retire-stage ARF" : "execute-sampled ARF",
            {}};
        harness::RunOptions options = optionsFor(commit_only);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            s.values[w.name] = harness::speedupVsBaseline(
                w.name, "Bfetch", options);
        }
        series.push_back(std::move(s));
    }
    std::printf("\n=== Ablation: ARF sampling point (paper IV-B.2) "
                "===\n\n");
    harness::speedupTable(benchutil::suiteWorkloadNames(),
                          benchutil::suiteSensitiveNames(), series)
        .print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    std::vector<harness::BatchJob> jobs;
    for (bool commit_only : {false, true}) {
        benchutil::appendSpeedupSweep(
            jobs,
            std::string("ablation_arf/") +
                (commit_only ? "retire" : "execute"),
            {"Bfetch"}, optionsFor(commit_only));
    }
    benchutil::runSweep("ablation_arf", config, jobs);

    for (bool commit_only : {false, true}) {
        harness::RunOptions options = optionsFor(commit_only);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            benchutil::registerCase(
                std::string("ablation_arf/") +
                    (commit_only ? "retire/" : "execute/") + w.name,
                "speedup", [name = w.name, options] {
                    return harness::speedupVsBaseline(
                        name, "Bfetch", options);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
