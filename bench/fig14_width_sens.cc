/**
 * @file
 * Fig. 14: B-Fetch speedup on 2-wide, 4-wide and 8-wide out-of-order
 * pipelines (paper: 22.6% / 23.2% / 26.7% geomean — the benefit holds
 * from light-weight to heavy-weight cores and grows with width).
 * Each width's speedup is measured against the same-width baseline.
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

const unsigned widths[] = {2, 4, 8};

harness::RunOptions
optionsFor(unsigned width)
{
    harness::RunOptions options = benchutil::singleOptions();
    options.width = width;
    return options;
}

void
printReport()
{
    std::vector<harness::SpeedupSeries> series;
    for (unsigned width : widths) {
        harness::SpeedupSeries s{std::to_string(width) + "wide", {}};
        harness::RunOptions options = optionsFor(width);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            s.values[w.name] = harness::speedupVsBaseline(
                w.name, "Bfetch", options);
        }
        series.push_back(std::move(s));
    }
    std::printf("\n=== Figure 14: pipeline width sensitivity ===\n\n");
    harness::speedupTable(benchutil::suiteWorkloadNames(),
                          benchutil::suiteSensitiveNames(), series)
        .print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    std::vector<harness::BatchJob> jobs;
    for (unsigned width : widths) {
        benchutil::appendSpeedupSweep(
            jobs, "fig14/" + std::to_string(width) + "wide",
            {"Bfetch"}, optionsFor(width));
    }
    benchutil::runSweep("fig14", config, jobs);

    for (unsigned width : widths) {
        harness::RunOptions options = optionsFor(width);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            benchutil::registerCase(
                "fig14/" + w.name + "/" + std::to_string(width) +
                    "wide",
                "speedup", [name = w.name, options] {
                    return harness::speedupVsBaseline(
                        name, "Bfetch", options);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
