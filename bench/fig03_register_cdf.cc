/**
 * @file
 * Fig. 3a/3b: cumulative distributions of (a) load base-register content
 * variation and (b) per-load effective-address variation across 1, 3 and
 * 12 executed basic blocks, at cache-block (64B) granularity, aggregated
 * over the whole suite. The paper's point: register contents stay within
 * a block or two (92% / 89% / 82% within 64B for 1/3/12 BB) while
 * effective addresses drift much more, which is why B-Fetch anchors its
 * address speculation on current register values.
 */

#include "bench/bench_util.hh"
#include "sim/profiler.hh"

namespace {

using namespace bfsim;

std::vector<sim::ProfileResult> results;

void
printReport()
{
    // Aggregate the per-workload histograms.
    auto print_cdf = [&](const char *title, bool use_registers) {
        std::printf("\n=== Figure 3%s: %s variation CDF (64B blocks) "
                    "===\n\n",
                    use_registers ? "a" : "b", title);
        TextTable table({"delta<=", "1BB", "3BB", "12BB"});
        for (unsigned delta : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
            std::vector<std::string> row{std::to_string(delta)};
            for (std::size_t d = 0; d < 3; ++d) {
                std::uint64_t within = 0, total = 0;
                for (const auto &r : results) {
                    const auto &hist =
                        use_registers ? r.registerDelta.byDepth[d]
                                      : r.eaDelta.byDepth[d];
                    total += hist.total();
                    for (unsigned b = 0;
                         b <= delta && b < hist.size(); ++b)
                        within += hist.bucket(b);
                }
                row.push_back(TextTable::fmt(
                    total ? static_cast<double>(within) / total : 0.0));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    };
    print_cdf("register content", true);
    print_cdf("effective address", false);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    std::uint64_t insts = harness::benchInstructionBudget(400'000);

    // The profiling passes are independent per workload; run them as
    // custom batch jobs, each writing its own slot of `results`.
    std::vector<harness::BatchJob> jobs;
    results.resize(benchutil::suiteWorkloads().size());
    int index = 0;
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        jobs.push_back(harness::BatchJob::custom(
            "fig03/profile/" + w.name, [index, &w, insts] {
                results[index] =
                    sim::profileRegisterVariation(w.program, insts);
                return static_cast<double>(results[index].basicBlocks);
            }));
        ++index;
    }
    benchutil::runSweep("fig03", config, jobs);

    index = 0;
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        benchutil::registerCase(
            "fig03/profile/" + w.name, "basic_blocks",
            [index] {
                return static_cast<double>(results[index].basicBlocks);
            });
        ++index;
    }
    return benchutil::runBench(argc, argv, printReport);
}
