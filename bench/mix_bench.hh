/**
 * @file
 * Shared implementation of the multiprogrammed figures (Figs. 9 and 10):
 * 29 FOA-selected mixes of N applications on an N-core CMP with shared
 * L3 and DRAM; reports normalized weighted speedup per mix and its
 * geomean, per the paper's methodology (V-A).
 */

#ifndef BFSIM_BENCH_MIX_BENCH_HH_
#define BFSIM_BENCH_MIX_BENCH_HH_

#include "bench/bench_util.hh"

namespace bfsim::benchutil {

inline std::string
mixLabel(const harness::Mix &mix)
{
    std::string label;
    for (const auto &name : mix.workloads) {
        if (!label.empty())
            label += '+';
        label += name;
    }
    return label;
}

/** A mix plus its 1-based position in the unfiltered selection. */
struct NumberedMix
{
    int index;
    harness::Mix mix;
};

/**
 * The FOA mix selection restricted to --filter: a mix is kept when any
 * member workload matches. Indices are the unfiltered mix numbers, so
 * filtered rows line up with a whole-suite run.
 */
inline std::vector<NumberedMix>
selectedMixes(unsigned mix_size, unsigned count)
{
    auto mixes = harness::selectMixes(mix_size, count);
    std::vector<NumberedMix> selected;
    int index = 1;
    for (auto &mix : mixes) {
        bool keep = false;
        for (const auto &name : mix.workloads)
            keep = keep || workloadSelected(name);
        if (keep)
            selected.push_back({index, std::move(mix)});
        ++index;
    }
    if (selected.empty())
        fatal("--filter='" + activeWorkloadFilter() +
              "' matches no mix member (see --list)");
    return selected;
}

inline void
printMixReport(unsigned mix_size, const char *figure)
{
    harness::RunOptions options = mixOptions();
    auto mixes = selectedMixes(mix_size, 29);
    std::vector<std::string> schemes = comparedSchemes();
    std::printf("\n=== Figure %s: normalized weighted speedup, "
                "%u-app mixes ===\n\n",
                figure, mix_size);
    std::vector<std::string> header{"mix", "workloads"};
    for (const std::string &kind : schemes)
        header.push_back(sim::prefetcherName(kind));
    TextTable table(header);
    std::vector<std::vector<double>> all(schemes.size());
    for (const auto &[index, mix] : mixes) {
        double base =
            harness::runMixCached(mix.workloads, "None", options)
                .weightedSpeedup;
        std::vector<std::string> row{"mix" + std::to_string(index),
                                     mixLabel(mix)};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            double norm = harness::runMixCached(mix.workloads,
                                                schemes[s], options)
                              .weightedSpeedup /
                          base;
            row.push_back(TextTable::fmt(norm));
            all[s].push_back(norm);
        }
        table.addRow(row);
    }
    std::vector<std::string> geo{"Geomean", "-"};
    for (const std::vector<double> &series : all)
        geo.push_back(TextTable::fmt(geometricMean(series)));
    table.addRow(geo);
    table.print(std::cout);
}

/** The mix sweep of one figure: every (kept) mix under every scheme. */
inline std::vector<harness::BatchJob>
mixSweepJobs(const char *figure, const std::vector<NumberedMix> &mixes,
             const harness::RunOptions &options)
{
    std::vector<std::string> schemes{"None"};
    for (const std::string &kind : comparedSchemes())
        schemes.push_back(kind);
    std::vector<harness::BatchJob> jobs;
    for (const auto &[index, mix] : mixes) {
        for (const std::string &kind : schemes) {
            jobs.push_back(harness::BatchJob::mix(
                mix.workloads, kind, options,
                std::string("fig") + figure + "/mix" +
                    std::to_string(index) + "/" +
                    sim::prefetcherName(kind)));
        }
    }
    return jobs;
}

inline int
runMixBench(int argc, char **argv, unsigned mix_size, const char *figure)
{
    BenchConfig config = parseBenchConfig(argc, argv);
    unsigned threads =
        config.jobs ? config.jobs : ThreadPool::defaultThreadCount();
    harness::RunOptions options = mixOptions();

    warmFoaProfiles(threads);
    auto mixes = selectedMixes(mix_size, 29);
    runSweep(std::string("fig") + figure, config,
             mixSweepJobs(figure, mixes, options));

    for (const auto &[index, mix] : mixes) {
        for (const std::string &kind : comparedSchemes()) {
            registerCase(
                std::string("fig") + figure + "/mix" +
                    std::to_string(index) + "/" +
                    sim::prefetcherName(kind),
                "weighted_speedup",
                [workloads = mix.workloads, kind, options] {
                    return harness::runMixCached(workloads, kind,
                                                 options)
                        .weightedSpeedup;
                });
        }
    }
    return runBench(argc, argv, [mix_size, figure] {
        printMixReport(mix_size, figure);
    });
}

} // namespace bfsim::benchutil

#endif // BFSIM_BENCH_MIX_BENCH_HH_
