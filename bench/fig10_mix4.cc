/**
 * @file
 * Fig. 10: normalized weighted speedup for 29 FOA-selected mixes of
 * four applications on a 4-core CMP (paper: B-Fetch 28.5% vs SMS 19.6%
 * geomean — B-Fetch's accuracy advantage widens with core count).
 */

#include "bench/mix_bench.hh"

int
main(int argc, char **argv)
{
    return bfsim::benchutil::runMixBench(argc, argv, 4, "10");
}
