/**
 * @file
 * Table I: hardware storage overhead of B-Fetch versus SMS, by
 * component. Paper totals: B-Fetch 12.84KB vs SMS 36.57KB (the "65%
 * less storage" headline). Our B-Fetch total runs slightly higher
 * because the per-sub-entry load-PC hash is accounted in the MHT (see
 * src/core/mht.hh); the ratio survives.
 */

#include "bench/bench_util.hh"
#include "core/bfetch.hh"
#include "prefetch/sms.hh"

namespace {

using namespace bfsim;

/** Paper Table I reference values in KB, by component name. */
const std::pair<const char *, double> paperBfetch[] = {
    {"Branch Trace Cache", 2.06},   {"Memory History Table", 4.5},
    {"Alternate Register File", 0.156},
    {"Per-Load Prefetch Filter", 2.25},
    {"Additional Cache bits", 1.37}, {"Prefetch Queue", 0.51},
    {"Path Confidence Estimator", 2.0},
};

void
printReport()
{
    prefetch::PrefetchQueue queue(100);
    auto bp = branch::makePredictor(harness::defaultPredictorSpec());
    core::BFetchEngine engine(core::BFetchConfig{}, *bp, queue);
    prefetch::SmsPrefetcher sms;

    std::printf("\n=== Table I: hardware storage overhead (KB) ===\n\n");
    TextTable table({"component", "entries", "ours KB", "paper KB"});
    double total = 0.0, paper_total = 0.0;
    auto report = engine.storageReport();
    for (const auto &component : report) {
        double paper_kb = 0.0;
        for (const auto &[name, kb] : paperBfetch)
            if (component.name == name)
                paper_kb = kb;
        table.addRow({component.name,
                      component.entries
                          ? std::to_string(component.entries)
                          : "-",
                      TextTable::fmt(component.kilobytes, 2),
                      TextTable::fmt(paper_kb, 2)});
        total += component.kilobytes;
        paper_total += paper_kb;
    }
    table.addRow({"B-Fetch TOTAL", "-", TextTable::fmt(total, 2),
                  TextTable::fmt(paper_total, 2)});
    double sms_kb = static_cast<double>(sms.storageBits()) / 8.0 / 1024.0;
    table.addRow({"SMS TOTAL", "-", TextTable::fmt(sms_kb, 2),
                  TextTable::fmt(36.57, 2)});
    table.print(std::cout);
    std::printf("\nB-Fetch uses %.0f%% less storage than SMS "
                "(paper: 65%%)\n",
                100.0 * (1.0 - total / sms_kb));
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    auto storage_kb = [] {
        prefetch::PrefetchQueue queue(100);
        auto bp = branch::makePredictor(harness::defaultPredictorSpec());
        core::BFetchEngine engine(core::BFetchConfig{}, *bp, queue);
        return static_cast<double>(engine.storageBits()) / 8.0 / 1024.0;
    };

    std::vector<harness::BatchJob> jobs{
        harness::BatchJob::custom("tab1/storage", storage_kb)};
    benchutil::runSweep("tab1", config, jobs);

    bfsim::benchutil::registerCase("tab1/storage", "bfetch_kb",
                                   storage_kb);
    return bfsim::benchutil::runBench(argc, argv, printReport);
}
