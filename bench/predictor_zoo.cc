/**
 * @file
 * Predictor zoo: sensitivity of B-Fetch to the direction predictor
 * driving its lookahead. Sweeps {tournament, tage, gshare} × {baseline,
 * B-Fetch} over the (filtered) suite and reports, per predictor, the
 * baseline conditional-branch miss rate and the B-Fetch speedup — the
 * registry-level generalization of the paper's Fig. 13 observation that
 * B-Fetch's benefit tracks branch-prediction quality.
 *
 * Every point is an ordinary registry job: the predictor spec rides in
 * RunOptions::predictor (part of the memo/report cache keys), so zoo
 * results coexist with default-config results in one process and one
 * JSON report without collisions.
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

const char *const kPredictors[] = {"tournament", "tage", "gshare"};

harness::RunOptions
optionsFor(const std::string &predictor)
{
    harness::RunOptions options = benchutil::singleOptions();
    options.predictor = predictor;
    return options;
}

void
printReport()
{
    std::printf("\n=== Predictor zoo: B-Fetch sensitivity to the "
                "direction predictor ===\n\n");

    std::vector<std::string> header{"workload"};
    for (const char *predictor : kPredictors)
        header.push_back(predictor);

    // Baseline (no-prefetch) conditional-branch miss rate: how much
    // raw prediction quality each predictor brings to the lookahead.
    TextTable miss(header);
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        std::vector<std::string> row{w.name};
        for (const char *predictor : kPredictors) {
            const harness::SingleResult &r = harness::runSingleCached(
                w.name, "None", optionsFor(predictor));
            row.push_back(
                TextTable::fmt(100.0 * r.core.branchMissRate, 2) + "%");
        }
        miss.addRow(row);
    }
    std::printf("baseline branch miss rate:\n\n");
    miss.print(std::cout);

    // B-Fetch speedup over the same-predictor no-prefetch baseline.
    TextTable speedup(header);
    std::vector<std::vector<double>> series(std::size(kPredictors));
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        std::vector<std::string> row{w.name};
        for (std::size_t p = 0; p < std::size(kPredictors); ++p) {
            double s = harness::speedupVsBaseline(
                w.name, "Bfetch", optionsFor(kPredictors[p]));
            row.push_back(TextTable::fmt(s));
            series[p].push_back(s);
        }
        speedup.addRow(row);
    }
    std::vector<std::string> geo{"Geomean"};
    for (const std::vector<double> &s : series)
        geo.push_back(TextTable::fmt(geometricMean(s)));
    speedup.addRow(geo);
    std::printf("\nB-Fetch speedup vs no-prefetch (same predictor):\n\n");
    speedup.print(std::cout);

    // Storage each predictor spends to earn its miss rate.
    std::printf("\npredictor storage:");
    for (const char *predictor : kPredictors) {
        const harness::SingleResult &r = harness::runSingleCached(
            benchutil::suiteWorkloads().front().get().name, "None",
            optionsFor(predictor));
        std::printf("  %s %.1f KB", predictor, r.branchPredictorKB);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);

    std::vector<harness::BatchJob> jobs;
    for (const char *predictor : kPredictors) {
        harness::RunOptions options = optionsFor(predictor);
        for (const workloads::Workload &w :
             benchutil::suiteWorkloads()) {
            for (const char *kind : {"None", "Bfetch"}) {
                jobs.push_back(harness::BatchJob::single(
                    w.name, kind, options,
                    std::string("zoo/") + predictor + "/" + w.name +
                        "/" + kind));
            }
        }
    }
    benchutil::runSweep("predictor_zoo", config, jobs);

    for (const char *predictor : kPredictors) {
        harness::RunOptions options = optionsFor(predictor);
        for (const workloads::Workload &w :
             benchutil::suiteWorkloads()) {
            benchutil::registerCase(
                std::string("zoo/") + predictor + "/" + w.name +
                    "/Bfetch",
                "speedup", [name = w.name, options] {
                    return harness::speedupVsBaseline(name, "Bfetch",
                                                      options);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
