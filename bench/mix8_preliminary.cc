/**
 * @file
 * Mix-8 preliminary (paper V-B.2: "Preliminary results with mixes of 8
 * workloads continue this trend"): a reduced set of four 8-app mixes on
 * an 8-core CMP, checking that B-Fetch's lead over SMS persists as
 * shared-resource contention intensifies further.
 *
 * Note: C(18,8) = 43758 candidate mixes are scored by FOA; only the
 * top four run (each simulation is 8 cores), with a smaller default
 * instruction budget than Figs. 9/10.
 */

#include "bench/mix_bench.hh"

namespace {

using namespace bfsim;

void
printReport()
{
    harness::RunOptions options;
    options.instructions = harness::benchInstructionBudget(100'000);
    auto mixes = benchutil::selectedMixes(8, 4);
    std::printf("\n=== Mix-8 preliminary: normalized weighted speedup "
                "===\n\n");
    TextTable table({"mix", "Stride", "SMS", "Bfetch"});
    std::vector<double> stride_all, sms_all, bf_all;
    for (const auto &[index, mix] : mixes) {
        double base =
            harness::runMixCached(mix.workloads,
                                  sim::PrefetcherKind::None, options)
                .weightedSpeedup;
        auto norm = [&](sim::PrefetcherKind kind) {
            return harness::runMixCached(mix.workloads, kind, options)
                       .weightedSpeedup /
                   base;
        };
        double stride = norm(sim::PrefetcherKind::Stride);
        double sms = norm(sim::PrefetcherKind::Sms);
        double bf = norm(sim::PrefetcherKind::BFetch);
        table.addRow({"mix" + std::to_string(index),
                      TextTable::fmt(stride), TextTable::fmt(sms),
                      TextTable::fmt(bf)});
        stride_all.push_back(stride);
        sms_all.push_back(sms);
        bf_all.push_back(bf);
    }
    table.addRow({"Geomean", TextTable::fmt(geometricMean(stride_all)),
                  TextTable::fmt(geometricMean(sms_all)),
                  TextTable::fmt(geometricMean(bf_all))});
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    unsigned threads = config.jobs
                           ? config.jobs
                           : ThreadPool::defaultThreadCount();
    harness::RunOptions options;
    options.instructions = harness::benchInstructionBudget(100'000);

    benchutil::warmFoaProfiles(threads);
    auto mixes = benchutil::selectedMixes(8, 4);
    std::vector<harness::BatchJob> jobs;
    for (const auto &[index, mix] : mixes) {
        for (sim::PrefetcherKind kind :
             {sim::PrefetcherKind::None, sim::PrefetcherKind::Stride,
              sim::PrefetcherKind::Sms, sim::PrefetcherKind::BFetch}) {
            jobs.push_back(harness::BatchJob::mix(
                mix.workloads, kind, options,
                "mix8/mix" + std::to_string(index) + "/" +
                    sim::prefetcherName(kind)));
        }
    }
    benchutil::runSweep("mix8", config, jobs);

    for (const auto &[index, mix] : mixes) {
        for (sim::PrefetcherKind kind : benchutil::comparedSchemes()) {
            benchutil::registerCase(
                "mix8/mix" + std::to_string(index) + "/" +
                    sim::prefetcherName(kind),
                "weighted_speedup",
                [workloads = mix.workloads, kind, options] {
                    return harness::runMixCached(workloads, kind,
                                                 options)
                        .weightedSpeedup;
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
