/**
 * @file
 * Mix-8 preliminary (paper V-B.2: "Preliminary results with mixes of 8
 * workloads continue this trend"): a reduced set of four 8-app mixes on
 * an 8-core CMP, checking that B-Fetch's lead over SMS persists as
 * shared-resource contention intensifies further.
 *
 * Note: C(18,8) = 43758 candidate mixes are scored by FOA; only the
 * top four run (each simulation is 8 cores), with a smaller default
 * instruction budget than Figs. 9/10.
 */

#include "bench/mix_bench.hh"

namespace {

using namespace bfsim;

void
printReport()
{
    harness::RunOptions options;
    options.instructions = harness::benchInstructionBudget(100'000);
    auto mixes = benchutil::selectedMixes(8, 4);
    std::vector<std::string> schemes = benchutil::comparedSchemes();
    std::printf("\n=== Mix-8 preliminary: normalized weighted speedup "
                "===\n\n");
    std::vector<std::string> header{"mix"};
    for (const std::string &kind : schemes)
        header.push_back(sim::prefetcherName(kind));
    TextTable table(header);
    std::vector<std::vector<double>> all(schemes.size());
    for (const auto &[index, mix] : mixes) {
        double base =
            harness::runMixCached(mix.workloads, "None", options)
                .weightedSpeedup;
        std::vector<std::string> row{"mix" + std::to_string(index)};
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            double norm = harness::runMixCached(mix.workloads,
                                                schemes[s], options)
                              .weightedSpeedup /
                          base;
            row.push_back(TextTable::fmt(norm));
            all[s].push_back(norm);
        }
        table.addRow(row);
    }
    std::vector<std::string> geo{"Geomean"};
    for (const std::vector<double> &series : all)
        geo.push_back(TextTable::fmt(geometricMean(series)));
    table.addRow(geo);
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    unsigned threads = config.jobs
                           ? config.jobs
                           : ThreadPool::defaultThreadCount();
    harness::RunOptions options;
    options.instructions = harness::benchInstructionBudget(100'000);

    benchutil::warmFoaProfiles(threads);
    auto mixes = benchutil::selectedMixes(8, 4);
    std::vector<std::string> schemes{"None"};
    for (const std::string &kind : benchutil::comparedSchemes())
        schemes.push_back(kind);
    std::vector<harness::BatchJob> jobs;
    for (const auto &[index, mix] : mixes) {
        for (const std::string &kind : schemes) {
            jobs.push_back(harness::BatchJob::mix(
                mix.workloads, kind, options,
                "mix8/mix" + std::to_string(index) + "/" +
                    sim::prefetcherName(kind)));
        }
    }
    benchutil::runSweep("mix8", config, jobs);

    for (const auto &[index, mix] : mixes) {
        for (const std::string &kind : benchutil::comparedSchemes()) {
            benchutil::registerCase(
                "mix8/mix" + std::to_string(index) + "/" +
                    sim::prefetcherName(kind),
                "weighted_speedup",
                [workloads = mix.workloads, kind, options] {
                    return harness::runMixCached(workloads, kind,
                                                 options)
                        .weightedSpeedup;
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
