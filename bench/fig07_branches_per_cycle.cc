/**
 * @file
 * Fig. 7: breakdown of the number of branch instructions fetched per
 * cycle (among fetch cycles containing at least one branch), aggregated
 * across the suite on the 4-wide baseline. The paper uses this to argue
 * the main branch predictor has idle lookup bandwidth B-Fetch can
 * borrow (>99.95% of cycles fetch at most two branches).
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

void
printReport()
{
    harness::RunOptions options = benchutil::singleOptions();
    std::array<std::uint64_t, 5> totals{};
    std::uint64_t branch_cycles = 0;
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        const harness::SingleResult &r = harness::runSingleCached(
            w.name, "None", options);
        for (std::size_t i = 1; i < totals.size(); ++i)
            totals[i] += r.core.branchesPerFetchCycle[i];
        branch_cycles += r.core.fetchCyclesWithBranch;
    }
    std::printf("\n=== Figure 7: branches fetched per cycle (suite "
                "aggregate) ===\n\n");
    TextTable table({"branches/cycle", "share"});
    for (std::size_t i = 1; i < totals.size(); ++i) {
        double share = branch_cycles
                           ? static_cast<double>(totals[i]) /
                                 static_cast<double>(branch_cycles)
                           : 0.0;
        std::string label = std::to_string(i) +
                            (i == 4 ? "+ branches" : " branch(es)");
        table.addRow({label, TextTable::fmt(100.0 * share, 3) + "%"});
    }
    table.print(std::cout);
    double le2 = branch_cycles ? 100.0 *
                                     static_cast<double>(totals[1] +
                                                         totals[2]) /
                                     static_cast<double>(branch_cycles)
                               : 0.0;
    std::printf("\ncycles with <= 2 branches: %.3f%% (paper: >99.95%%)\n",
                le2);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    harness::RunOptions options = benchutil::singleOptions();

    std::vector<harness::BatchJob> jobs;
    benchutil::appendSingleSweep(jobs, "fig07",
                                 {"None"}, options);
    benchutil::runSweep("fig07", config, jobs);

    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        benchutil::registerCase(
            "fig07/" + w.name, "branch_cycles",
            [name = w.name, options] {
                return static_cast<double>(
                    harness::runSingleCached(
                        name, "None", options)
                        .core.fetchCyclesWithBranch);
            });
    }
    return benchutil::runBench(argc, argv, printReport);
}
