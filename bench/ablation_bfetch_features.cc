/**
 * @file
 * Ablation study (beyond the paper's figures): contribution of each
 * B-Fetch mechanism — loop prefetching (LoopCnt x LoopDelta), the
 * neg/posPatt multi-load vectors, and the per-load filter — measured by
 * disabling one at a time. DESIGN.md section 7 motivates these as the
 * design choices the paper calls out but does not ablate.
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

struct Variant
{
    const char *name;
    void (*apply)(core::BFetchConfig &);
};

const Variant variants[] = {
    {"full", [](core::BFetchConfig &) {}},
    {"no-loop",
     [](core::BFetchConfig &cfg) { cfg.enableLoopPrefetch = false; }},
    {"no-patt",
     [](core::BFetchConfig &cfg) { cfg.enablePattPrefetch = false; }},
    {"no-filter",
     [](core::BFetchConfig &cfg) { cfg.enablePerLoadFilter = false; }},
};

harness::RunOptions
optionsFor(const Variant &variant)
{
    harness::RunOptions options = benchutil::singleOptions();
    variant.apply(options.bfetch);
    return options;
}

void
printReport()
{
    std::vector<harness::SpeedupSeries> series;
    for (const Variant &variant : variants) {
        harness::SpeedupSeries s{variant.name, {}};
        harness::RunOptions options = optionsFor(variant);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            s.values[w.name] = harness::speedupVsBaseline(
                w.name, "Bfetch", options);
        }
        series.push_back(std::move(s));
    }
    std::printf("\n=== Ablation: B-Fetch feature contributions ===\n\n");
    harness::speedupTable(benchutil::suiteWorkloadNames(),
                          benchutil::suiteSensitiveNames(), series)
        .print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    std::vector<harness::BatchJob> jobs;
    for (const Variant &variant : variants) {
        benchutil::appendSpeedupSweep(
            jobs, std::string("ablation/") + variant.name,
            {"Bfetch"}, optionsFor(variant));
    }
    benchutil::runSweep("ablation_bfetch_features", config, jobs);

    for (const Variant &variant : variants) {
        harness::RunOptions options = optionsFor(variant);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            benchutil::registerCase(
                std::string("ablation/") + variant.name + "/" + w.name,
                "speedup", [name = w.name, options] {
                    return harness::speedupVsBaseline(
                        name, "Bfetch", options);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
