/**
 * @file
 * Shared scaffolding for the per-figure bench binaries.
 *
 * Every bench registers its simulation points as google-benchmark cases
 * (one iteration each; the harness memoizes results so counters and the
 * final paper-style table share the same runs), then prints the table
 * the corresponding paper figure/table reports.
 *
 * The per-core instruction budget defaults to 400k single-threaded /
 * 200k per mix core, overridable with BFSIM_INSTS.
 */

#ifndef BFSIM_BENCH_BENCH_UTIL_HH_
#define BFSIM_BENCH_BENCH_UTIL_HH_

#include <cstdio>
#include <iostream>
#include <functional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/mixes.hh"
#include "harness/report.hh"
#include "workloads/workload.hh"

namespace bfsim::benchutil {

/** Default options for single-threaded figure benches. */
inline harness::RunOptions
singleOptions()
{
    harness::RunOptions options;
    options.instructions = harness::benchInstructionBudget(400'000);
    return options;
}

/** Default options for multiprogrammed figure benches. */
inline harness::RunOptions
mixOptions()
{
    harness::RunOptions options;
    options.instructions = harness::benchInstructionBudget(200'000);
    return options;
}

/**
 * Register one google-benchmark case that performs `body` once per
 * iteration and reports `counter` ("speedup", "weighted_speedup", ...).
 */
inline void
registerCase(const std::string &name, const std::string &counter,
             std::function<double()> body)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [counter, body](benchmark::State &state) {
            double value = 0.0;
            for (auto _ : state)
                value = body();
            state.counters[counter] = value;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

/** Standard main body: run benchmarks, then print the figure table. */
inline int
runBench(int argc, char **argv, const std::function<void()> &print_report)
{
    setQuiet(true);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_report();
    return 0;
}

/** The three comparison schemes of Figs. 8-10. */
inline std::vector<sim::PrefetcherKind>
comparedSchemes()
{
    return {sim::PrefetcherKind::Stride, sim::PrefetcherKind::Sms,
            sim::PrefetcherKind::BFetch};
}

} // namespace bfsim::benchutil

#endif // BFSIM_BENCH_BENCH_UTIL_HH_
