/**
 * @file
 * Shared scaffolding for the per-figure bench binaries.
 *
 * Every bench builds its full sweep as a vector of harness::BatchJobs
 * and submits it through the parallel batch runner (runSweep) first, so
 * all simulation points execute across --jobs/BFSIM_JOBS worker threads
 * with shared baselines deduplicated by the memo cache. It then
 * registers its points as google-benchmark cases (one iteration each;
 * the memoized results make these cache hits) and prints the table the
 * corresponding paper figure/table reports.
 *
 * The per-core instruction budget defaults to 400k single-threaded /
 * 200k per mix core, overridable with BFSIM_INSTRUCTIONS (alias
 * BFSIM_INSTS). A machine-readable JSON results/timing report is
 * written when --report=PATH or BFSIM_REPORT is given; a compact
 * simulator-throughput (MIPS) report when --perf-report=PATH or
 * BFSIM_PERF_REPORT is given (CI archives it as BENCH_perf.json).
 *
 * Statistical sampling (--sample / BFSIM_SAMPLE, see
 * harness/sampling.hh) replaces every full detailed run with scheduled
 * warmup+measure windows, estimating CPI at a fraction of the detailed
 * work; --sample-jobs / BFSIM_SAMPLE_JOBS simulates the windows of
 * each run in parallel. A ":ckpt" suffix on the spec (or
 * BFSIM_SAMPLE_CKPT=1) restores each window from the newest trace
 * checkpoint at-or-before its start — skipping the functional
 * fast-forward and warming the L1-D from the checkpoint's tag
 * snapshot — so warmup budgets shrink without losing accuracy.
 *
 * Failure policy: a failed sweep point becomes a failed report item,
 * not a dead process. --retries/BFSIM_RETRIES grants bounded retries,
 * --fail-fast/BFSIM_FAIL_FAST stops launching jobs after the first
 * failure, --deadline/BFSIM_JOB_DEADLINE bounds each job's wall clock,
 * and the binary's exit status is non-zero iff any job ultimately
 * failed.
 *
 * Crash resilience: --isolate=process / BFSIM_ISOLATE=process executes
 * the sweep in forked worker processes (harness/process_pool.hh) so a
 * segfaulting job costs one worker respawn, not the whole bench;
 * --journal=DIR / BFSIM_JOURNAL_DIR journals each completed job to a
 * crash-safe record so a killed and restarted bench resumes with zero
 * recompute (see harness/journal.hh).
 */

#ifndef BFSIM_BENCH_BENCH_UTIL_HH_
#define BFSIM_BENCH_BENCH_UTIL_HH_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <functional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "branch/registry.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/thread_pool.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/mixes.hh"
#include "harness/report.hh"
#include "prefetch/registry.hh"
#include "sim/trace_store.hh"
#include "workloads/workload.hh"

namespace bfsim::benchutil {

/** Batch-runner options shared by every bench binary. */
struct BenchConfig
{
    /** Worker threads (0 = BFSIM_JOBS env, else hardware concurrency). */
    unsigned jobs = 0;
    /** JSON report destination ("" = none, "-" = stdout). */
    std::string reportPath;
    /** Simulator-throughput (MIPS) report destination ("" = none). */
    std::string perfReportPath;
    /** Workload-subset substring filter ("" = whole suite). */
    std::string filter;
    /**
     * On-disk trace store directory ("" = BFSIM_TRACE_DIR env, or
     * disabled). Captured DynOp streams persist here across processes;
     * see sim/trace_store.hh.
     */
    std::string traceDir;
    /**
     * Remote trace-store endpoint "host:port" (--remote-store, env
     * BFSIM_REMOTE_STORE, "" = local store only): local misses fetch
     * from — and local publications push to — a daemon-hosted store,
     * so a fleet captures each trace exactly once globally.
     */
    std::string remoteStore;
    /** Retries / fail-fast / per-job deadline (env-seeded, flags win). */
    harness::BatchOptions batchOptions = harness::BatchOptions::fromEnv();
};

/**
 * Jobs that ultimately failed across every runSweep of this process;
 * runBench turns a non-zero count into a non-zero exit status.
 */
inline std::size_t &
sweepFailureCount()
{
    static std::size_t failures = 0;
    return failures;
}

/**
 * The workload-name substring set by --filter (empty = whole suite).
 * Process-global so table printers and sweep builders agree on the
 * subset without threading config through every call.
 */
inline std::string &
activeWorkloadFilter()
{
    static std::string filter;
    return filter;
}

/**
 * The prefetch-scheme spec set by --prefetcher / BFSIM_PREFETCHER
 * (empty = the figure's own scheme list). Process-global for the same
 * reason as activeWorkloadFilter(): table printers and sweep builders
 * must agree on the column set.
 */
inline std::string &
activePrefetcherOverride()
{
    static std::string spec;
    return spec;
}

/** True when `name` is in the --filter subset. */
inline bool
workloadSelected(const std::string &name)
{
    const std::string &filter = activeWorkloadFilter();
    return filter.empty() || name.find(filter) != std::string::npos;
}

/** The suite restricted to --filter (whole suite by default). */
inline std::vector<std::reference_wrapper<const workloads::Workload>>
suiteWorkloads()
{
    std::vector<std::reference_wrapper<const workloads::Workload>>
        selected;
    for (const auto &w : workloads::allWorkloads())
        if (workloadSelected(w.name))
            selected.emplace_back(w);
    if (selected.empty())
        fatal("--filter='" + activeWorkloadFilter() +
              "' matches no workload (see --list)");
    return selected;
}

/** Names of the --filter subset, in suite order. */
inline std::vector<std::string>
suiteWorkloadNames()
{
    std::vector<std::string> names;
    for (const workloads::Workload &w : suiteWorkloads())
        names.push_back(w.name);
    return names;
}

/** Prefetch-sensitive names within the --filter subset. */
inline std::vector<std::string>
suiteSensitiveNames()
{
    std::vector<std::string> names;
    for (const workloads::Workload &w : suiteWorkloads())
        if (w.prefetchSensitive)
            names.push_back(w.name);
    return names;
}

/** --list: print the suite (with filter applied) and exit. */
inline void
listWorkloadsAndExit()
{
    for (const workloads::Workload &w : suiteWorkloads()) {
        std::printf("%-12s %-11s %s\n", w.name.c_str(),
                    w.prefetchSensitive ? "[sensitive]" : "",
                    w.character.c_str());
    }
    std::exit(0);
}

/** --list-predictors: print the branch-predictor registry and exit. */
inline void
listPredictorsAndExit()
{
    for (const std::string &name : branch::predictorNames())
        std::printf("%s\n", name.c_str());
    std::exit(0);
}

/** --list-prefetchers: print the prefetch-scheme registry and exit. */
inline void
listPrefetchersAndExit()
{
    for (const std::string &name : prefetch::prefetcherNames()) {
        std::printf("%-8s (%s)\n", name.c_str(),
                    prefetch::prefetcherDisplayName(name).c_str());
    }
    std::exit(0);
}

/**
 * Validate a --predictor / BFSIM_PREDICTOR spec by constructing it
 * once; a bad name or parameter dies at the CLI boundary with the
 * registry's message (which lists the registered names) instead of
 * failing every job of the sweep.
 */
inline void
validatePredictorSpec(const std::string &spec)
{
    try {
        branch::makePredictor(spec);
    } catch (const SimError &error) {
        fatal(std::string("--predictor: ") + error.message());
    }
}

/** Validate a --prefetcher / BFSIM_PREFETCHER spec (see above). */
inline void
validatePrefetcherSpec(const std::string &spec)
{
    try {
        prefetch::makeCorePrefetch(spec);
    } catch (const SimError &error) {
        fatal(std::string("--prefetcher: ") + error.message());
    }
}

/**
 * Parse and strip the shared batch flags (--jobs=N / --jobs N /
 * --report=PATH / --report PATH / --perf-report=PATH /
 * --filter=SUBSTR / --filter SUBSTR / --trace-dir=DIR / --trace-dir DIR /
 * --remote-store=HOST:PORT / --remote-store HOST:PORT /
 * --retries=N / --retries N / --fail-fast / --deadline=SECONDS /
 * --deadline SECONDS / --isolate=MODE / --journal=DIR / --journal DIR /
 * --sample[=P:W:M[:ckpt]] / --sample-jobs=N / --list)
 * from argv before google-benchmark sees the remaining arguments.
 * BFSIM_REPORT / BFSIM_PERF_REPORT seed the report paths,
 * BFSIM_TRACE_DIR seeds the trace-store directory, BFSIM_RETRIES /
 * BFSIM_FAIL_FAST / BFSIM_JOB_DEADLINE / BFSIM_ISOLATE /
 * BFSIM_JOURNAL_DIR seed the failure policy, and
 * BFSIM_SAMPLE / BFSIM_SAMPLE_JOBS seed the sampling config; explicit
 * flags win. --isolate=process runs jobs in forked worker processes,
 * --isolate=none forces the in-process thread pool; --journal=DIR
 * checkpoints completed jobs in DIR and restores them on rerun. --filter restricts every per-workload sweep, table row
 * and geomean to workloads whose name contains SUBSTR; --trace-dir
 * persists captured DynOp traces in DIR so later processes skip
 * functional capture; --sample enables statistical sampling with the
 * default (or a P:W:M period:warmup:measure, optionally :ckpt-suffixed
 * for checkpoint-restored windows) schedule, --sample=0
 * force-disables it; --list prints the (filtered) suite and exits.
 *
 * Registry selection: --predictor=SPEC (env BFSIM_PREDICTOR) makes
 * every run of the process use the given branch-predictor registry
 * spec (`name[:k=v,...]`, see branch/registry.hh); --prefetcher=SPEC
 * (env BFSIM_PREFETCHER) replaces the figure's compared prefetch
 * schemes with the single given scheme. Both specs are validated here
 * so typos die with the list of registered names. --list-predictors /
 * --list-prefetchers print the registries and exit.
 */
inline BenchConfig
parseBenchConfig(int &argc, char **argv)
{
    BenchConfig config;
    bool list = false;
    bool list_predictors = false;
    bool list_prefetchers = false;
    std::string predictor_spec;
    std::string prefetcher_spec;
    if (const char *env = std::getenv("BFSIM_REPORT"))
        config.reportPath = env;
    if (const char *env = std::getenv("BFSIM_PERF_REPORT"))
        config.perfReportPath = env;
    if (const char *env = std::getenv("BFSIM_PREFETCHER"))
        prefetcher_spec = env;

    auto parse_jobs = [](const std::string &value) {
        char *end = nullptr;
        unsigned long jobs = std::strtoul(value.c_str(), &end, 10);
        if (!end || *end != '\0' || jobs == 0)
            fatal("--jobs expects a positive integer, got '" + value +
                  "'");
        return static_cast<unsigned>(jobs);
    };
    auto parse_retries = [](const std::string &value) {
        char *end = nullptr;
        unsigned long retries = std::strtoul(value.c_str(), &end, 10);
        if (!end || *end != '\0')
            fatal("--retries expects a count, got '" + value + "'");
        return static_cast<unsigned>(retries);
    };
    auto parse_deadline = [](const std::string &value) {
        char *end = nullptr;
        double seconds = std::strtod(value.c_str(), &end);
        if (!end || *end != '\0' || seconds < 0.0)
            fatal("--deadline expects seconds, got '" + value + "'");
        return seconds;
    };
    auto parse_isolate = [](const std::string &value) {
        if (value == "process")
            return harness::IsolateMode::Process;
        if (value == "none" || value == "thread")
            return harness::IsolateMode::None;
        fatal("--isolate expects 'process' or 'none', got '" + value +
              "'");
        return harness::IsolateMode::None;
    };

    bool sample_flag = false;
    std::string sample_spec;
    unsigned sample_jobs = 0;

    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            config.jobs = parse_jobs(arg.substr(7));
        } else if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc)
                fatal(arg + " expects a value");
            config.jobs = parse_jobs(argv[++i]);
        } else if (arg.rfind("--report=", 0) == 0) {
            config.reportPath = arg.substr(9);
        } else if (arg == "--report") {
            if (i + 1 >= argc)
                fatal("--report expects a path");
            config.reportPath = argv[++i];
        } else if (arg.rfind("--perf-report=", 0) == 0) {
            config.perfReportPath = arg.substr(14);
        } else if (arg == "--perf-report") {
            if (i + 1 >= argc)
                fatal("--perf-report expects a path");
            config.perfReportPath = argv[++i];
        } else if (arg.rfind("--filter=", 0) == 0) {
            config.filter = arg.substr(9);
        } else if (arg == "--filter") {
            if (i + 1 >= argc)
                fatal("--filter expects a substring");
            config.filter = argv[++i];
        } else if (arg.rfind("--trace-dir=", 0) == 0) {
            config.traceDir = arg.substr(12);
        } else if (arg == "--trace-dir") {
            if (i + 1 >= argc)
                fatal("--trace-dir expects a directory");
            config.traceDir = argv[++i];
        } else if (arg.rfind("--remote-store=", 0) == 0) {
            config.remoteStore = arg.substr(15);
        } else if (arg == "--remote-store") {
            if (i + 1 >= argc)
                fatal("--remote-store expects host:port");
            config.remoteStore = argv[++i];
        } else if (arg.rfind("--retries=", 0) == 0) {
            config.batchOptions.retries = parse_retries(arg.substr(10));
        } else if (arg == "--retries") {
            if (i + 1 >= argc)
                fatal("--retries expects a count");
            config.batchOptions.retries = parse_retries(argv[++i]);
        } else if (arg == "--fail-fast") {
            config.batchOptions.failFast = true;
        } else if (arg.rfind("--deadline=", 0) == 0) {
            config.batchOptions.jobDeadlineSeconds =
                parse_deadline(arg.substr(11));
        } else if (arg == "--deadline") {
            if (i + 1 >= argc)
                fatal("--deadline expects seconds");
            config.batchOptions.jobDeadlineSeconds =
                parse_deadline(argv[++i]);
        } else if (arg.rfind("--isolate=", 0) == 0) {
            config.batchOptions.isolate = parse_isolate(arg.substr(10));
        } else if (arg == "--isolate") {
            if (i + 1 >= argc)
                fatal("--isolate expects 'process' or 'none'");
            config.batchOptions.isolate = parse_isolate(argv[++i]);
        } else if (arg.rfind("--journal=", 0) == 0) {
            config.batchOptions.journalDir = arg.substr(10);
        } else if (arg == "--journal") {
            if (i + 1 >= argc)
                fatal("--journal expects a directory");
            config.batchOptions.journalDir = argv[++i];
        } else if (arg == "--sample") {
            sample_flag = true;
            sample_spec = "1";
        } else if (arg.rfind("--sample=", 0) == 0) {
            sample_flag = true;
            sample_spec = arg.substr(9);
        } else if (arg.rfind("--sample-jobs=", 0) == 0) {
            sample_jobs = parse_jobs(arg.substr(14));
        } else if (arg == "--sample-jobs") {
            if (i + 1 >= argc)
                fatal("--sample-jobs expects a value");
            sample_jobs = parse_jobs(argv[++i]);
        } else if (arg.rfind("--predictor=", 0) == 0) {
            predictor_spec = arg.substr(12);
        } else if (arg == "--predictor") {
            if (i + 1 >= argc)
                fatal("--predictor expects a spec (see "
                      "--list-predictors)");
            predictor_spec = argv[++i];
        } else if (arg.rfind("--prefetcher=", 0) == 0) {
            prefetcher_spec = arg.substr(13);
        } else if (arg == "--prefetcher") {
            if (i + 1 >= argc)
                fatal("--prefetcher expects a spec (see "
                      "--list-prefetchers)");
            prefetcher_spec = argv[++i];
        } else if (arg == "--list-predictors") {
            list_predictors = true;
        } else if (arg == "--list-prefetchers") {
            list_prefetchers = true;
        } else if (arg == "--list") {
            list = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    activeWorkloadFilter() = config.filter;
    if (!config.traceDir.empty())
        sim::trace_store::setDirectory(config.traceDir);
    if (!config.remoteStore.empty())
        sim::trace_store::setRemoteEndpoint(config.remoteStore);
    if (sample_flag || sample_jobs > 0) {
        // Layer the flags over the (env-seeded) process default, so
        // e.g. --sample-jobs alone tunes a BFSIM_SAMPLE-enabled run.
        harness::SampleConfig sample = harness::defaultSampleConfig();
        if (sample_flag) {
            if (sample_spec == "1") {
                sample.enabled = true;
            } else if (sample_spec == "0") {
                sample.enabled = false;
            } else {
                try {
                    unsigned jobs = sample.jobs;
                    sample = harness::SampleConfig::parse(sample_spec);
                    sample.jobs = jobs;
                } catch (const SimError &error) {
                    fatal(std::string("--sample: ") + error.message());
                }
            }
        }
        if (sample_jobs > 0)
            sample.jobs = sample_jobs;
        harness::setDefaultSampleConfig(sample);
    }
    if (list_predictors)
        listPredictorsAndExit();
    if (list_prefetchers)
        listPrefetchersAndExit();
    if (!predictor_spec.empty()) {
        validatePredictorSpec(predictor_spec);
        harness::setDefaultPredictorSpec(predictor_spec);
    } else {
        // The env-seeded default (BFSIM_PREDICTOR) deserves the same
        // early validation as the flag.
        validatePredictorSpec(harness::defaultPredictorSpec());
    }
    if (!prefetcher_spec.empty()) {
        validatePrefetcherSpec(prefetcher_spec);
        activePrefetcherOverride() = prefetcher_spec;
    }
    if (list)
        listWorkloadsAndExit();
    return config;
}

/**
 * Execute the bench's sweep through the parallel batch runner, print
 * batch timing (and any per-job failures) to stderr and write the JSON
 * report when configured. Failed jobs accumulate into
 * sweepFailureCount() so runBench can exit non-zero.
 */
inline harness::BatchResult
runSweep(const std::string &bench_name, const BenchConfig &config,
         const std::vector<harness::BatchJob> &jobs)
{
    unsigned threads =
        config.jobs ? config.jobs : ThreadPool::defaultThreadCount();
    std::fprintf(stderr, "%s: %zu jobs on %u thread(s)\n",
                 bench_name.c_str(), jobs.size(), threads);
    harness::BatchResult batch = harness::runBatch(
        jobs, threads, harness::defaultBatchProgress,
        config.batchOptions);
    std::fprintf(stderr,
                 "%s: wall %.2fs, serial-equivalent %.2fs, "
                 "speedup %.2fx\n",
                 bench_name.c_str(), batch.wallSeconds,
                 batch.cpuSeconds, batch.speedup());
    if (std::uint64_t insts = batch.simInstructions()) {
        std::fprintf(stderr,
                     "%s: simulated %.1fM instructions in %.2fs "
                     "(%.2f MIPS, batched ops %s)\n",
                     bench_name.c_str(),
                     static_cast<double>(insts) / 1e6,
                     batch.simSeconds(), batch.mips(),
                     sim::batchOpsEnabled() ? "on" : "off");
    }
    if (sim::trace_store::enabled()) {
        sim::trace_store::Stats disk = sim::trace_store::stats();
        harness::TraceCacheStats trace = harness::traceCacheStats();
        std::fprintf(stderr,
                     "%s: trace store %llu hit(s), %llu miss(es), "
                     "%llu fallback(s); wrote %.1f KB (%.2f B/op), "
                     "read %.1f KB; capture %.2fs, decode %.2fs\n",
                     bench_name.c_str(),
                     static_cast<unsigned long long>(disk.hits),
                     static_cast<unsigned long long>(disk.misses),
                     static_cast<unsigned long long>(disk.fallbacks),
                     static_cast<double>(disk.bytesWritten) / 1024.0,
                     disk.bytesPerOp(),
                     static_cast<double>(disk.bytesRead) / 1024.0,
                     trace.captureSeconds, disk.decodeSeconds);
    }
    {
        // Sampling summary over the batch: windows simulated, prefix
        // ops skipped outright (artifact seeks), prefix ops still
        // materialised sequentially, and checkpoint restores — the
        // observability behind the sampled-speedup claims.
        std::uint64_t windows = 0, ff_skipped = 0, ff_insts = 0;
        std::uint64_t ckpt_hits = 0;
        for (const harness::BatchItem &item : batch.items) {
            const harness::SampledStats *s = nullptr;
            if (item.single && item.single->sampled.enabled)
                s = &item.single->sampled;
            else if (item.mix && item.mix->sampled.enabled)
                s = &item.mix->sampled;
            if (!s)
                continue;
            windows += s->windows;
            ff_skipped += s->ffSkippedOps;
            ff_insts += s->ffInstructions;
            ckpt_hits += s->checkpointHits;
        }
        if (windows) {
            std::fprintf(
                stderr,
                "%s: sampled %llu window(s); ff skipped %.1fM op(s), "
                "ff executed %.1fM op(s), %llu checkpoint restore(s)\n",
                bench_name.c_str(),
                static_cast<unsigned long long>(windows),
                static_cast<double>(ff_skipped) / 1e6,
                static_cast<double>(ff_insts) / 1e6,
                static_cast<unsigned long long>(ckpt_hits));
        }
    }
    if (std::size_t failures = batch.failures()) {
        sweepFailureCount() += failures;
        std::fprintf(stderr, "%s: %zu job(s) FAILED:\n",
                     bench_name.c_str(), failures);
        for (const harness::BatchItem &item : batch.items) {
            if (item.failed)
                std::fprintf(stderr, "  %s: %s\n", item.label.c_str(),
                             item.error.c_str());
        }
    }
    if (!config.reportPath.empty())
        harness::writeBatchReportFile(config.reportPath, bench_name,
                                      batch);
    if (!config.perfReportPath.empty())
        harness::writePerfReportFile(config.perfReportPath, bench_name,
                                     batch);
    return batch;
}

/** Default options for single-threaded figure benches. */
inline harness::RunOptions
singleOptions()
{
    harness::RunOptions options;
    options.instructions = harness::benchInstructionBudget(400'000);
    options.sample = harness::defaultSampleConfig();
    return options;
}

/** Default options for multiprogrammed figure benches. */
inline harness::RunOptions
mixOptions()
{
    harness::RunOptions options;
    options.instructions = harness::benchInstructionBudget(200'000);
    options.sample = harness::defaultSampleConfig();
    return options;
}

/**
 * Register one google-benchmark case that performs `body` once per
 * iteration and reports `counter` ("speedup", "weighted_speedup", ...).
 */
inline void
registerCase(const std::string &name, const std::string &counter,
             std::function<double()> body)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [counter, body](benchmark::State &state) {
            double value = 0.0;
            for (auto _ : state)
                value = body();
            state.counters[counter] = value;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

/**
 * Standard main body: run benchmarks, then print the figure table.
 * Exits non-zero when any sweep job failed (the table still prints —
 * with holes — so a partially failed campaign remains inspectable).
 */
inline int
runBench(int argc, char **argv, const std::function<void()> &print_report)
{
    setQuiet(true);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    try {
        print_report();
    } catch (const std::exception &error) {
        // A failed job can leave a table assembler without its row
        // (e.g. a missing-series geomean); report and flag, don't die.
        std::fprintf(stderr, "report generation failed: %s\n",
                     error.what());
        return 1;
    }
    return sweepFailureCount() > 0 ? 1 : 0;
}

/**
 * The three comparison schemes of Figs. 8-10 — or the single scheme
 * --prefetcher / BFSIM_PREFETCHER pinned for the whole process.
 */
inline std::vector<std::string>
comparedSchemes()
{
    const std::string &spec = activePrefetcherOverride();
    if (!spec.empty())
        return {spec};
    return {"Stride", "SMS", "Bfetch"};
}

/**
 * Append one single-run job per (filtered) suite workload × scheme
 * under `prefix`. Pass "None" in `schemes` to include the shared
 * baseline runs speedupVsBaseline needs.
 */
inline void
appendSingleSweep(std::vector<harness::BatchJob> &jobs,
                  const std::string &prefix,
                  const std::vector<std::string> &schemes,
                  const harness::RunOptions &options)
{
    for (const workloads::Workload &w : suiteWorkloads()) {
        for (const std::string &kind : schemes) {
            jobs.push_back(harness::BatchJob::single(
                w.name, kind, options,
                prefix + "/" + w.name + "/" +
                    sim::prefetcherName(kind)));
        }
    }
}

/** Single sweep over baseline + the given schemes (the common case). */
inline void
appendSpeedupSweep(std::vector<harness::BatchJob> &jobs,
                   const std::string &prefix,
                   std::vector<std::string> schemes,
                   const harness::RunOptions &options)
{
    schemes.insert(schemes.begin(), "None");
    appendSingleSweep(jobs, prefix, schemes, options);
}

/**
 * Warm every per-workload FOA profile in parallel so the serial
 * selectMixes call that follows finds them memoized.
 */
inline void
warmFoaProfiles(unsigned n_threads)
{
    std::vector<harness::BatchJob> jobs;
    for (const auto &w : workloads::allWorkloads()) {
        jobs.push_back(harness::BatchJob::custom(
            "foa/" + w.name,
            [name = w.name] { return harness::foaProfile(name); }));
    }
    harness::runBatch(jobs, n_threads);
}

} // namespace bfsim::benchutil

#endif // BFSIM_BENCH_BENCH_UTIL_HH_
