/**
 * @file
 * Table II: the baseline configuration, printed from the live defaults
 * so documentation can never drift from the code, with measured
 * suite-average branch miss rate alongside the paper's 2.76%.
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

void
printReport()
{
    harness::RunOptions options = benchutil::singleOptions();
    sim::CoreConfig core;
    mem::HierarchyConfig hier;
    mem::DramConfig dram;

    std::vector<double> miss_rates;
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        miss_rates.push_back(
            harness::runSingleCached(w.name, "None",
                                     options)
                .core.branchMissRate);
    }
    double bp_kb = harness::runSingleCached(
                       "astar", "None", options)
                       .branchPredictorKB;

    std::printf("\n=== Table II: baseline configuration ===\n\n");
    TextTable table({"parameter", "value", "paper"});
    table.addRow({"CPU", std::to_string(core.width) + "-wide O3, " +
                             std::to_string(core.robSize) + "-entry ROB",
                  "4-wide O3, 192-entry ROB"});
    table.addRow({"LQ/SQ", std::to_string(core.lqSize) + "/" +
                               std::to_string(core.sqSize),
                  "(unlisted)"});
    table.addRow({"L1D cache",
                  std::to_string(hier.l1d.sizeBytes / 1024) + "KB " +
                      std::to_string(hier.l1d.associativity) +
                      "-way, " +
                      std::to_string(hier.l1d.hitLatency) + "-cycle",
                  "64KB 8-way, 2-cycle"});
    table.addRow({"L2 cache",
                  std::to_string(hier.l2.sizeBytes / 1024) + "KB " +
                      std::to_string(hier.l2.associativity) +
                      "-way, " +
                      std::to_string(hier.l2.hitLatency) + "-cycle",
                  "256KB 8-way, 10-cycle"});
    table.addRow({"Shared L3",
                  std::to_string(hier.l3PerCoreBytes / 1024 / 1024) +
                      "MB/core " +
                      std::to_string(hier.l3Associativity) + "-way, " +
                      std::to_string(hier.l3HitLatency) + "-cycle",
                  "2MB/core 16-way, 20-cycle"});
    table.addRow({"DRAM", std::to_string(dram.accessLatency) +
                              "-cycle, 1 block / " +
                              std::to_string(dram.cyclesPerBlock) +
                              " cycles (12.8GB/s)",
                  "200-cycle, 12.8GB/s"});
    table.addRow({"Branch predictor",
                  TextTable::fmt(bp_kb, 2) + "KB tournament, " +
                      TextTable::fmt(100.0 *
                                         arithmeticMean(miss_rates),
                                     2) +
                      "% miss rate",
                  "6.55KB tournament, 2.76% miss rate"});
    table.addRow({"Prefetch queue",
                  std::to_string(core.pfQueueEntries) + " entries, " +
                      std::to_string(core.pfIssuePerCycle) +
                      " issue/cycle",
                  "100 entries (Table I)"});
    table.addRow({"Path confidence threshold",
                  TextTable::fmt(
                      core::BFetchConfig{}.pathConfidenceThreshold, 2),
                  "0.75"});
    table.addRow({"Per-load filter threshold",
                  std::to_string(
                      core::BFetchConfig{}.perLoadThreshold),
                  "3"});
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    harness::RunOptions options = benchutil::singleOptions();

    std::vector<harness::BatchJob> jobs;
    benchutil::appendSingleSweep(jobs, "tab2",
                                 {"None"}, options);
    benchutil::runSweep("tab2", config, jobs);

    bfsim::benchutil::registerCase(
        "tab2/baseline_missrate", "miss_rate", [options] {
            double total = 0.0;
            for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
                total += harness::runSingleCached(
                             w.name, "None", options)
                             .core.branchMissRate;
            }
            return total / benchutil::suiteWorkloads().size();
        });
    return bfsim::benchutil::runBench(argc, argv, printReport);
}
