/**
 * @file
 * Fig. 15: B-Fetch speedup at four storage budgets, scaling the BrTC
 * and MHT entry counts through 64/128/256/512 (paper: 8.01 / 9.65 /
 * 12.94 / 19.46 KB yielding 17.0% / 18.9% / 23.2% / 23.1% — the
 * evaluated 256-entry point is the knee of the curve).
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

const std::size_t entryCounts[] = {64, 128, 256, 512};

harness::RunOptions
optionsFor(std::size_t entries)
{
    harness::RunOptions options = benchutil::singleOptions();
    options.bfetch.brtcEntries = entries;
    options.bfetch.mhtEntries = entries / 2;
    return options;
}

void
printReport()
{
    std::printf("\n=== Figure 15: B-Fetch storage sensitivity ===\n\n");
    TextTable table({"BrTC/MHT entries", "storage KB",
                     "geomean speedup", "geomean pf. sens."});
    auto sensitive = benchutil::suiteSensitiveNames();
    for (std::size_t entries : entryCounts) {
        harness::RunOptions options = optionsFor(entries);
        std::vector<double> all, sens;
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            double s = harness::speedupVsBaseline(
                w.name, "Bfetch", options);
            all.push_back(s);
            if (std::find(sensitive.begin(), sensitive.end(), w.name) !=
                sensitive.end())
                sens.push_back(s);
        }
        // Storage: recompute from a throwaway engine configuration.
        prefetch::PrefetchQueue queue(100);
        auto bp = branch::makePredictor(harness::defaultPredictorSpec());
        core::BFetchEngine engine(options.bfetch, *bp, queue);
        double kb = static_cast<double>(engine.storageBits()) / 8.0 /
                    1024.0;
        table.addRow({std::to_string(entries) + "/" +
                          std::to_string(entries / 2),
                      TextTable::fmt(kb, 2),
                      TextTable::fmt(geometricMean(all)),
                      TextTable::fmt(geometricMean(sens))});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    std::vector<harness::BatchJob> jobs;
    for (std::size_t entries : entryCounts) {
        benchutil::appendSpeedupSweep(
            jobs, "fig15/" + std::to_string(entries),
            {"Bfetch"}, optionsFor(entries));
    }
    benchutil::runSweep("fig15", config, jobs);

    for (std::size_t entries : entryCounts) {
        harness::RunOptions options = optionsFor(entries);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            benchutil::registerCase(
                "fig15/" + w.name + "/" + std::to_string(entries),
                "speedup", [name = w.name, options] {
                    return harness::speedupVsBaseline(
                        name, "Bfetch", options);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
