/**
 * @file
 * Fig. 9: normalized weighted speedup for 29 FOA-selected mixes of two
 * applications on a 2-core CMP with shared L3 and DRAM (paper: B-Fetch
 * 31.2% vs SMS 25.5% geomean).
 */

#include "bench/mix_bench.hh"

int
main(int argc, char **argv)
{
    return bfsim::benchutil::runMixBench(argc, argv, 2, "9");
}
