/**
 * @file
 * Fig. 13: sensitivity to the tournament branch predictor's size (0.5x
 * / 1x / 2x / 4x). The paper reports baseline and B-Fetch IPC both
 * creeping up slightly with predictor size while the conditional miss
 * rate falls from 2.95% to 2.53% — B-Fetch does not depend on an
 * oversized predictor.
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

const double scales[] = {0.5, 1.0, 2.0, 4.0};

void
printReport()
{
    // Reference: geomean baseline IPC at the default (1x) predictor.
    harness::RunOptions ref = benchutil::singleOptions();
    std::vector<double> ref_ipcs;
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        ref_ipcs.push_back(
            harness::runSingleCached(w.name, "None",
                                     ref)
                .core.ipc);
    }
    double ref_geo = geometricMean(ref_ipcs);

    std::printf("\n=== Figure 13: branch predictor size sensitivity "
                "===\n\n");
    TextTable table({"bp size", "bp KB", "baseline (norm)",
                     "Bfetch (norm)", "miss rate"});
    for (double scale : scales) {
        harness::RunOptions options = benchutil::singleOptions();
        options.bpSizeScale = scale;
        std::vector<double> base_ipcs, bf_ipcs, miss_rates;
        double bp_kb = 0.0;
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            const auto &base = harness::runSingleCached(
                w.name, "None", options);
            const auto &bf = harness::runSingleCached(
                w.name, "Bfetch", options);
            base_ipcs.push_back(base.core.ipc);
            bf_ipcs.push_back(bf.core.ipc);
            miss_rates.push_back(base.core.branchMissRate);
            bp_kb = base.branchPredictorKB;
        }
        table.addRow(
            {TextTable::fmt(scale, 1) + "x", TextTable::fmt(bp_kb, 2),
             TextTable::fmt(geometricMean(base_ipcs) / ref_geo, 4),
             TextTable::fmt(geometricMean(bf_ipcs) / ref_geo, 4),
             TextTable::fmt(100.0 * arithmeticMean(miss_rates), 2) +
                 "%"});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    std::vector<harness::BatchJob> jobs;
    for (double scale : scales) {
        harness::RunOptions options = benchutil::singleOptions();
        options.bpSizeScale = scale;
        benchutil::appendSpeedupSweep(
            jobs, "fig13/scale" + TextTable::fmt(scale, 1),
            {"Bfetch"}, options);
    }
    benchutil::runSweep("fig13", config, jobs);

    for (double scale : scales) {
        harness::RunOptions options = benchutil::singleOptions();
        options.bpSizeScale = scale;
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            benchutil::registerCase(
                "fig13/" + w.name + "/scale" + TextTable::fmt(scale, 1),
                "bfetch_ipc", [name = w.name, options] {
                    return harness::runSingleCached(
                               name, "Bfetch",
                               options)
                        .core.ipc;
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
