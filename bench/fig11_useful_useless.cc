/**
 * @file
 * Fig. 11: number of useful and useless prefetches issued by SMS and
 * B-Fetch per benchmark. The paper's claim: B-Fetch issues ~4% more
 * useful prefetches while issuing ~50% fewer useless ones, the accuracy
 * edge behind its multiprogrammed wins.
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

void
printReport()
{
    harness::RunOptions options = benchutil::singleOptions();
    std::printf("\n=== Figure 11: useful / useless prefetches issued "
                "===\n\n");
    TextTable table({"benchmark", "SMS useful", "SMS useless",
                     "Bfetch useful", "Bfetch useless"});
    std::uint64_t sms_useful = 0, sms_useless = 0, bf_useful = 0,
                  bf_useless = 0;
    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        const auto &sms = harness::runSingleCached(
            w.name, "SMS", options);
        const auto &bf = harness::runSingleCached(
            w.name, "Bfetch", options);
        table.addRow({w.name, TextTable::fmt(sms.mem.usefulPrefetches),
                      TextTable::fmt(sms.mem.uselessPrefetches),
                      TextTable::fmt(bf.mem.usefulPrefetches),
                      TextTable::fmt(bf.mem.uselessPrefetches)});
        sms_useful += sms.mem.usefulPrefetches;
        sms_useless += sms.mem.uselessPrefetches;
        bf_useful += bf.mem.usefulPrefetches;
        bf_useless += bf.mem.uselessPrefetches;
    }
    table.addRow({"TOTAL", TextTable::fmt(sms_useful),
                  TextTable::fmt(sms_useless),
                  TextTable::fmt(bf_useful),
                  TextTable::fmt(bf_useless)});
    table.print(std::cout);
    if (sms_useless > 0) {
        std::printf("\nB-Fetch issues %.0f%% of SMS's useless "
                    "prefetches (paper: ~50%% fewer)\n",
                    100.0 * static_cast<double>(bf_useless) /
                        static_cast<double>(sms_useless));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    harness::RunOptions options = benchutil::singleOptions();

    std::vector<harness::BatchJob> jobs;
    benchutil::appendSingleSweep(jobs, "fig11",
                                 {"SMS", "Bfetch"},
                                 options);
    benchutil::runSweep("fig11", config, jobs);

    for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
        for (const char *kind : {"SMS", "Bfetch"}) {
            benchutil::registerCase(
                "fig11/" + w.name + "/" + sim::prefetcherName(kind),
                "useful_prefetches", [name = w.name, kind, options] {
                    return static_cast<double>(
                        harness::runSingleCached(name, kind, options)
                            .mem.usefulPrefetches);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
