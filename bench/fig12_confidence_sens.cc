/**
 * @file
 * Fig. 12: B-Fetch speedup sensitivity to the branch path-confidence
 * threshold (paper: 20.6% / 23.2% / 23.0% geomean at 0.45 / 0.75 /
 * 0.90 — the 0.75 sweet spot, with stability across the range thanks
 * to the per-load filter).
 */

#include "bench/bench_util.hh"

namespace {

using namespace bfsim;

const double thresholds[] = {0.45, 0.75, 0.90};

harness::RunOptions
optionsFor(double threshold)
{
    harness::RunOptions options = benchutil::singleOptions();
    options.bfetch.pathConfidenceThreshold = threshold;
    return options;
}

void
printReport()
{
    std::vector<harness::SpeedupSeries> series;
    for (double threshold : thresholds) {
        harness::SpeedupSeries s{"Conf=" + TextTable::fmt(threshold, 2),
                                 {}};
        harness::RunOptions options = optionsFor(threshold);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            s.values[w.name] = harness::speedupVsBaseline(
                w.name, "Bfetch", options);
        }
        series.push_back(std::move(s));
    }
    std::printf("\n=== Figure 12: path-confidence threshold "
                "sensitivity ===\n\n");
    harness::speedupTable(benchutil::suiteWorkloadNames(),
                          benchutil::suiteSensitiveNames(), series)
        .print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchConfig config =
        benchutil::parseBenchConfig(argc, argv);
    std::vector<harness::BatchJob> jobs;
    for (double threshold : thresholds) {
        benchutil::appendSpeedupSweep(
            jobs, "fig12/conf" + TextTable::fmt(threshold, 2),
            {"Bfetch"}, optionsFor(threshold));
    }
    benchutil::runSweep("fig12", config, jobs);

    for (double threshold : thresholds) {
        harness::RunOptions options = optionsFor(threshold);
        for (const workloads::Workload &w : benchutil::suiteWorkloads()) {
            benchutil::registerCase(
                "fig12/" + w.name + "/conf" +
                    TextTable::fmt(threshold, 2),
                "speedup", [name = w.name, options] {
                    return harness::speedupVsBaseline(
                        name, "Bfetch", options);
                });
        }
    }
    return benchutil::runBench(argc, argv, printReport);
}
