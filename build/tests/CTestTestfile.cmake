# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/branch_test[1]_include.cmake")
include("/root/repo/build/tests/confidence_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/prefetch_test[1]_include.cmake")
include("/root/repo/build/tests/bfetch_test[1]_include.cmake")
include("/root/repo/build/tests/ooo_core_test[1]_include.cmake")
include("/root/repo/build/tests/cmp_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
