
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bfsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bfsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bfsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/bfsim_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/bfsim_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bfsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bfsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bfsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
