file(REMOVE_RECURSE
  "CMakeFiles/bfetch_test.dir/bfetch_test.cc.o"
  "CMakeFiles/bfetch_test.dir/bfetch_test.cc.o.d"
  "bfetch_test"
  "bfetch_test.pdb"
  "bfetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
