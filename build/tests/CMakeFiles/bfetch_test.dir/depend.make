# Empty dependencies file for bfetch_test.
# This may be replaced when dependencies are built.
