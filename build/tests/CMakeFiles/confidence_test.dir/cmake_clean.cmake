file(REMOVE_RECURSE
  "CMakeFiles/confidence_test.dir/confidence_test.cc.o"
  "CMakeFiles/confidence_test.dir/confidence_test.cc.o.d"
  "confidence_test"
  "confidence_test.pdb"
  "confidence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
