file(REMOVE_RECURSE
  "CMakeFiles/fig11_useful_useless.dir/fig11_useful_useless.cc.o"
  "CMakeFiles/fig11_useful_useless.dir/fig11_useful_useless.cc.o.d"
  "fig11_useful_useless"
  "fig11_useful_useless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_useful_useless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
