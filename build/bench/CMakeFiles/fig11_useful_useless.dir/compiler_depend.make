# Empty compiler generated dependencies file for fig11_useful_useless.
# This may be replaced when dependencies are built.
