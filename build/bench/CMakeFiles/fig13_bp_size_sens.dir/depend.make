# Empty dependencies file for fig13_bp_size_sens.
# This may be replaced when dependencies are built.
