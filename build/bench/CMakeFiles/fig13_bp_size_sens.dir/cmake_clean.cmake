file(REMOVE_RECURSE
  "CMakeFiles/fig13_bp_size_sens.dir/fig13_bp_size_sens.cc.o"
  "CMakeFiles/fig13_bp_size_sens.dir/fig13_bp_size_sens.cc.o.d"
  "fig13_bp_size_sens"
  "fig13_bp_size_sens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bp_size_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
