# Empty dependencies file for fig10_mix4.
# This may be replaced when dependencies are built.
