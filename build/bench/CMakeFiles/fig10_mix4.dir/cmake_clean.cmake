file(REMOVE_RECURSE
  "CMakeFiles/fig10_mix4.dir/fig10_mix4.cc.o"
  "CMakeFiles/fig10_mix4.dir/fig10_mix4.cc.o.d"
  "fig10_mix4"
  "fig10_mix4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mix4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
