# Empty compiler generated dependencies file for tab2_baseline_config.
# This may be replaced when dependencies are built.
