# Empty compiler generated dependencies file for ablation_bfetch_features.
# This may be replaced when dependencies are built.
