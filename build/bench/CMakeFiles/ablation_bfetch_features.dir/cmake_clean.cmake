file(REMOVE_RECURSE
  "CMakeFiles/ablation_bfetch_features.dir/ablation_bfetch_features.cc.o"
  "CMakeFiles/ablation_bfetch_features.dir/ablation_bfetch_features.cc.o.d"
  "ablation_bfetch_features"
  "ablation_bfetch_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bfetch_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
