file(REMOVE_RECURSE
  "CMakeFiles/fig09_mix2.dir/fig09_mix2.cc.o"
  "CMakeFiles/fig09_mix2.dir/fig09_mix2.cc.o.d"
  "fig09_mix2"
  "fig09_mix2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mix2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
