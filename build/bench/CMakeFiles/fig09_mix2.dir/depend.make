# Empty dependencies file for fig09_mix2.
# This may be replaced when dependencies are built.
