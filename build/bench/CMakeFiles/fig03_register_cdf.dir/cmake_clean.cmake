file(REMOVE_RECURSE
  "CMakeFiles/fig03_register_cdf.dir/fig03_register_cdf.cc.o"
  "CMakeFiles/fig03_register_cdf.dir/fig03_register_cdf.cc.o.d"
  "fig03_register_cdf"
  "fig03_register_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_register_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
