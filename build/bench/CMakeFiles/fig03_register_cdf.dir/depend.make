# Empty dependencies file for fig03_register_cdf.
# This may be replaced when dependencies are built.
