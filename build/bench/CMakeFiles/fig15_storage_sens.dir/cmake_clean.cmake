file(REMOVE_RECURSE
  "CMakeFiles/fig15_storage_sens.dir/fig15_storage_sens.cc.o"
  "CMakeFiles/fig15_storage_sens.dir/fig15_storage_sens.cc.o.d"
  "fig15_storage_sens"
  "fig15_storage_sens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_storage_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
