# Empty compiler generated dependencies file for fig15_storage_sens.
# This may be replaced when dependencies are built.
