# Empty compiler generated dependencies file for fig12_confidence_sens.
# This may be replaced when dependencies are built.
