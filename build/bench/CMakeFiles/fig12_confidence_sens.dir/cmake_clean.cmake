file(REMOVE_RECURSE
  "CMakeFiles/fig12_confidence_sens.dir/fig12_confidence_sens.cc.o"
  "CMakeFiles/fig12_confidence_sens.dir/fig12_confidence_sens.cc.o.d"
  "fig12_confidence_sens"
  "fig12_confidence_sens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_confidence_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
