file(REMOVE_RECURSE
  "CMakeFiles/ablation_arf.dir/ablation_arf.cc.o"
  "CMakeFiles/ablation_arf.dir/ablation_arf.cc.o.d"
  "ablation_arf"
  "ablation_arf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
