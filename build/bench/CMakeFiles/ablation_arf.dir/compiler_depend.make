# Empty compiler generated dependencies file for ablation_arf.
# This may be replaced when dependencies are built.
