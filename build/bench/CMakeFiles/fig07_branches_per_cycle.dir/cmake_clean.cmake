file(REMOVE_RECURSE
  "CMakeFiles/fig07_branches_per_cycle.dir/fig07_branches_per_cycle.cc.o"
  "CMakeFiles/fig07_branches_per_cycle.dir/fig07_branches_per_cycle.cc.o.d"
  "fig07_branches_per_cycle"
  "fig07_branches_per_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_branches_per_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
