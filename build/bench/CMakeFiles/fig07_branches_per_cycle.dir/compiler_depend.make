# Empty compiler generated dependencies file for fig07_branches_per_cycle.
# This may be replaced when dependencies are built.
