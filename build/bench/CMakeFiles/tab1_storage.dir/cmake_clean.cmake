file(REMOVE_RECURSE
  "CMakeFiles/tab1_storage.dir/tab1_storage.cc.o"
  "CMakeFiles/tab1_storage.dir/tab1_storage.cc.o.d"
  "tab1_storage"
  "tab1_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
