# Empty compiler generated dependencies file for tab1_storage.
# This may be replaced when dependencies are built.
