file(REMOVE_RECURSE
  "CMakeFiles/fig14_width_sens.dir/fig14_width_sens.cc.o"
  "CMakeFiles/fig14_width_sens.dir/fig14_width_sens.cc.o.d"
  "fig14_width_sens"
  "fig14_width_sens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_width_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
