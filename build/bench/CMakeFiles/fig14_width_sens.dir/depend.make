# Empty dependencies file for fig14_width_sens.
# This may be replaced when dependencies are built.
