file(REMOVE_RECURSE
  "CMakeFiles/fig08_single_thread.dir/fig08_single_thread.cc.o"
  "CMakeFiles/fig08_single_thread.dir/fig08_single_thread.cc.o.d"
  "fig08_single_thread"
  "fig08_single_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
