file(REMOVE_RECURSE
  "CMakeFiles/mix8_preliminary.dir/mix8_preliminary.cc.o"
  "CMakeFiles/mix8_preliminary.dir/mix8_preliminary.cc.o.d"
  "mix8_preliminary"
  "mix8_preliminary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix8_preliminary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
