# Empty compiler generated dependencies file for mix8_preliminary.
# This may be replaced when dependencies are built.
