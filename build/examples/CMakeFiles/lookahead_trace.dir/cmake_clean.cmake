file(REMOVE_RECURSE
  "CMakeFiles/lookahead_trace.dir/lookahead_trace.cpp.o"
  "CMakeFiles/lookahead_trace.dir/lookahead_trace.cpp.o.d"
  "lookahead_trace"
  "lookahead_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookahead_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
