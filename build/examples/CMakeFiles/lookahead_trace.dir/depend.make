# Empty dependencies file for lookahead_trace.
# This may be replaced when dependencies are built.
