file(REMOVE_RECURSE
  "CMakeFiles/bfsim_core.dir/bfetch.cc.o"
  "CMakeFiles/bfsim_core.dir/bfetch.cc.o.d"
  "CMakeFiles/bfsim_core.dir/brtc.cc.o"
  "CMakeFiles/bfsim_core.dir/brtc.cc.o.d"
  "CMakeFiles/bfsim_core.dir/mht.cc.o"
  "CMakeFiles/bfsim_core.dir/mht.cc.o.d"
  "CMakeFiles/bfsim_core.dir/per_load_filter.cc.o"
  "CMakeFiles/bfsim_core.dir/per_load_filter.cc.o.d"
  "libbfsim_core.a"
  "libbfsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
