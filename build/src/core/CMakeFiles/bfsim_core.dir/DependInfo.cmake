
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bfetch.cc" "src/core/CMakeFiles/bfsim_core.dir/bfetch.cc.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/bfetch.cc.o.d"
  "/root/repo/src/core/brtc.cc" "src/core/CMakeFiles/bfsim_core.dir/brtc.cc.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/brtc.cc.o.d"
  "/root/repo/src/core/mht.cc" "src/core/CMakeFiles/bfsim_core.dir/mht.cc.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/mht.cc.o.d"
  "/root/repo/src/core/per_load_filter.cc" "src/core/CMakeFiles/bfsim_core.dir/per_load_filter.cc.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/per_load_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bfsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/bfsim_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/bfsim_prefetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
