file(REMOVE_RECURSE
  "libbfsim_sim.a"
)
