# Empty compiler generated dependencies file for bfsim_sim.
# This may be replaced when dependencies are built.
