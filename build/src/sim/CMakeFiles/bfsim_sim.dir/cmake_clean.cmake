file(REMOVE_RECURSE
  "CMakeFiles/bfsim_sim.dir/cmp.cc.o"
  "CMakeFiles/bfsim_sim.dir/cmp.cc.o.d"
  "CMakeFiles/bfsim_sim.dir/executor.cc.o"
  "CMakeFiles/bfsim_sim.dir/executor.cc.o.d"
  "CMakeFiles/bfsim_sim.dir/ooo_core.cc.o"
  "CMakeFiles/bfsim_sim.dir/ooo_core.cc.o.d"
  "CMakeFiles/bfsim_sim.dir/profiler.cc.o"
  "CMakeFiles/bfsim_sim.dir/profiler.cc.o.d"
  "libbfsim_sim.a"
  "libbfsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
