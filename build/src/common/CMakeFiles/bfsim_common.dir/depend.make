# Empty dependencies file for bfsim_common.
# This may be replaced when dependencies are built.
