file(REMOVE_RECURSE
  "CMakeFiles/bfsim_common.dir/log.cc.o"
  "CMakeFiles/bfsim_common.dir/log.cc.o.d"
  "CMakeFiles/bfsim_common.dir/stats.cc.o"
  "CMakeFiles/bfsim_common.dir/stats.cc.o.d"
  "CMakeFiles/bfsim_common.dir/table.cc.o"
  "CMakeFiles/bfsim_common.dir/table.cc.o.d"
  "libbfsim_common.a"
  "libbfsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
