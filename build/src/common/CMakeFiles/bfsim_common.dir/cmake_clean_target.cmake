file(REMOVE_RECURSE
  "libbfsim_common.a"
)
