# Empty dependencies file for bfsim_prefetch.
# This may be replaced when dependencies are built.
