file(REMOVE_RECURSE
  "CMakeFiles/bfsim_prefetch.dir/sms.cc.o"
  "CMakeFiles/bfsim_prefetch.dir/sms.cc.o.d"
  "CMakeFiles/bfsim_prefetch.dir/stride.cc.o"
  "CMakeFiles/bfsim_prefetch.dir/stride.cc.o.d"
  "libbfsim_prefetch.a"
  "libbfsim_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
