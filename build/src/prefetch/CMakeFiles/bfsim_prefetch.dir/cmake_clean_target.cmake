file(REMOVE_RECURSE
  "libbfsim_prefetch.a"
)
