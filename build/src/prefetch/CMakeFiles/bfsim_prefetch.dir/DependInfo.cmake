
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/sms.cc" "src/prefetch/CMakeFiles/bfsim_prefetch.dir/sms.cc.o" "gcc" "src/prefetch/CMakeFiles/bfsim_prefetch.dir/sms.cc.o.d"
  "/root/repo/src/prefetch/stride.cc" "src/prefetch/CMakeFiles/bfsim_prefetch.dir/stride.cc.o" "gcc" "src/prefetch/CMakeFiles/bfsim_prefetch.dir/stride.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bfsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
