# Empty compiler generated dependencies file for bfsim_harness.
# This may be replaced when dependencies are built.
