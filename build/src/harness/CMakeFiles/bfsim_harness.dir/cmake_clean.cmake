file(REMOVE_RECURSE
  "CMakeFiles/bfsim_harness.dir/experiment.cc.o"
  "CMakeFiles/bfsim_harness.dir/experiment.cc.o.d"
  "CMakeFiles/bfsim_harness.dir/mixes.cc.o"
  "CMakeFiles/bfsim_harness.dir/mixes.cc.o.d"
  "CMakeFiles/bfsim_harness.dir/report.cc.o"
  "CMakeFiles/bfsim_harness.dir/report.cc.o.d"
  "libbfsim_harness.a"
  "libbfsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
