file(REMOVE_RECURSE
  "libbfsim_harness.a"
)
