file(REMOVE_RECURSE
  "CMakeFiles/bfsim_branch.dir/confidence.cc.o"
  "CMakeFiles/bfsim_branch.dir/confidence.cc.o.d"
  "CMakeFiles/bfsim_branch.dir/predictor.cc.o"
  "CMakeFiles/bfsim_branch.dir/predictor.cc.o.d"
  "libbfsim_branch.a"
  "libbfsim_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
