file(REMOVE_RECURSE
  "libbfsim_branch.a"
)
