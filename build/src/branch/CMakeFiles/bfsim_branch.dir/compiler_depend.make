# Empty compiler generated dependencies file for bfsim_branch.
# This may be replaced when dependencies are built.
