file(REMOVE_RECURSE
  "libbfsim_workloads.a"
)
