# Empty compiler generated dependencies file for bfsim_workloads.
# This may be replaced when dependencies are built.
