
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernels_compute.cc" "src/workloads/CMakeFiles/bfsim_workloads.dir/kernels_compute.cc.o" "gcc" "src/workloads/CMakeFiles/bfsim_workloads.dir/kernels_compute.cc.o.d"
  "/root/repo/src/workloads/kernels_irregular.cc" "src/workloads/CMakeFiles/bfsim_workloads.dir/kernels_irregular.cc.o" "gcc" "src/workloads/CMakeFiles/bfsim_workloads.dir/kernels_irregular.cc.o.d"
  "/root/repo/src/workloads/kernels_stencil.cc" "src/workloads/CMakeFiles/bfsim_workloads.dir/kernels_stencil.cc.o" "gcc" "src/workloads/CMakeFiles/bfsim_workloads.dir/kernels_stencil.cc.o.d"
  "/root/repo/src/workloads/kernels_stream.cc" "src/workloads/CMakeFiles/bfsim_workloads.dir/kernels_stream.cc.o" "gcc" "src/workloads/CMakeFiles/bfsim_workloads.dir/kernels_stream.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/bfsim_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/bfsim_workloads.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/bfsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bfsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
