file(REMOVE_RECURSE
  "CMakeFiles/bfsim_workloads.dir/kernels_compute.cc.o"
  "CMakeFiles/bfsim_workloads.dir/kernels_compute.cc.o.d"
  "CMakeFiles/bfsim_workloads.dir/kernels_irregular.cc.o"
  "CMakeFiles/bfsim_workloads.dir/kernels_irregular.cc.o.d"
  "CMakeFiles/bfsim_workloads.dir/kernels_stencil.cc.o"
  "CMakeFiles/bfsim_workloads.dir/kernels_stencil.cc.o.d"
  "CMakeFiles/bfsim_workloads.dir/kernels_stream.cc.o"
  "CMakeFiles/bfsim_workloads.dir/kernels_stream.cc.o.d"
  "CMakeFiles/bfsim_workloads.dir/registry.cc.o"
  "CMakeFiles/bfsim_workloads.dir/registry.cc.o.d"
  "libbfsim_workloads.a"
  "libbfsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
