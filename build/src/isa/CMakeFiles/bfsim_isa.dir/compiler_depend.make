# Empty compiler generated dependencies file for bfsim_isa.
# This may be replaced when dependencies are built.
