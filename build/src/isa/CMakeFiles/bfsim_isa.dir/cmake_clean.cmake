file(REMOVE_RECURSE
  "CMakeFiles/bfsim_isa.dir/assembler.cc.o"
  "CMakeFiles/bfsim_isa.dir/assembler.cc.o.d"
  "CMakeFiles/bfsim_isa.dir/isa.cc.o"
  "CMakeFiles/bfsim_isa.dir/isa.cc.o.d"
  "CMakeFiles/bfsim_isa.dir/program.cc.o"
  "CMakeFiles/bfsim_isa.dir/program.cc.o.d"
  "libbfsim_isa.a"
  "libbfsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
