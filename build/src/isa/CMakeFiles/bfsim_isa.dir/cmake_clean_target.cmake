file(REMOVE_RECURSE
  "libbfsim_isa.a"
)
