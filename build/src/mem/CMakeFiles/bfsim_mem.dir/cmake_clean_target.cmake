file(REMOVE_RECURSE
  "libbfsim_mem.a"
)
