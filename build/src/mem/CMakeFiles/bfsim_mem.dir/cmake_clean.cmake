file(REMOVE_RECURSE
  "CMakeFiles/bfsim_mem.dir/cache.cc.o"
  "CMakeFiles/bfsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/bfsim_mem.dir/hierarchy.cc.o"
  "CMakeFiles/bfsim_mem.dir/hierarchy.cc.o.d"
  "libbfsim_mem.a"
  "libbfsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
