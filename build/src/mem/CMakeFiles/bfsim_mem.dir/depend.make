# Empty dependencies file for bfsim_mem.
# This may be replaced when dependencies are built.
