#!/usr/bin/env python3
"""Client for the bfsimd sweep daemon (src/service/).

Speaks the line protocol of service/protocol.hh using only the Python
standard library, over either transport the daemon serves:

  --socket PATH       Unix-domain socket, newline-delimited text
  --host HOST:PORT    TCP, the framed transport of service/transport.hh
                      (8-byte little-endian header: u32 payload length,
                      u32 frame type; protocol lines ride in frame type
                      6, one line per frame, no trailing newline)

Three modes:

  bfsimd_client.py (--socket PATH | --host H:P) ping
  bfsimd_client.py (--socket PATH | --host H:P) shutdown
  bfsimd_client.py (--socket PATH | --host H:P) [--script FILE] [--table]

The default (sweep) mode reads request lines from --script (or stdin),
sends them verbatim, and streams the daemon's JSON-line responses to
stdout. With --table the stream is reduced to one deterministic row
per job -- label, headline value, status -- with every timing and
provenance field (seconds, cached, journaled) dropped, so CI can
byte-compare the table of an interrupted-and-resumed sweep against an
uninterrupted one. --shard-status additionally renders the
coordinator's "shard"/"shard-event" lines (live per-host progress of a
sharded sweep) to stderr as they arrive, whatever the stdout mode.

Exit status: 0 on a complete response stream, 1 on usage/connect
errors, 2 when the daemon answered any line with a protocol error,
3 when the stream ended mid-sweep (daemon death -- the journal makes a
re-submit cheap).
"""

import argparse
import json
import socket
import struct
import sys
import time

FRAME_LINE = 6
FRAME_HEADER = struct.Struct("<II")  # payload length, frame type


def connect(address, timeout):
    """Connect with bounded retry so a just-spawned daemon can bind.

    `address` is a Unix socket path (str) or a (host, port) tuple.
    """
    deadline = time.monotonic() + timeout
    delay = 0.05
    family = (socket.AF_UNIX if isinstance(address, str)
              else socket.AF_INET)
    while True:
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            sock.connect(address)
            return sock
        except OSError as error:
            sock.close()
            if time.monotonic() >= deadline:
                raise SystemExit(
                    "bfsimd_client: cannot connect to %s: %s"
                    % (address, error))
            time.sleep(delay)
            delay = min(delay * 2, 0.5)


class TextTransport:
    """Newline-delimited text over a Unix-domain socket."""

    def __init__(self, sock):
        self.sock = sock

    def send_request(self, text):
        self.sock.sendall(text.encode("utf-8"))

    def half_close(self):
        self.sock.shutdown(socket.SHUT_WR)

    def lines(self):
        buffer = b""
        while True:
            chunk = self.sock.recv(65536)
            if not chunk:
                return
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                yield line.decode("utf-8", "replace")


class FramedTransport:
    """Length-prefixed frames over TCP; text lines in FRAME_LINE."""

    def __init__(self, sock):
        self.sock = sock

    def send_request(self, text):
        out = bytearray()
        for line in text.splitlines():
            payload = line.encode("utf-8")
            out += FRAME_HEADER.pack(len(payload), FRAME_LINE)
            out += payload
        self.sock.sendall(bytes(out))

    def half_close(self):
        self.sock.shutdown(socket.SHUT_WR)

    def lines(self):
        buffer = b""
        while True:
            while len(buffer) >= FRAME_HEADER.size:
                length, kind = FRAME_HEADER.unpack_from(buffer)
                if len(buffer) < FRAME_HEADER.size + length:
                    break
                payload = buffer[FRAME_HEADER.size:
                                 FRAME_HEADER.size + length]
                buffer = buffer[FRAME_HEADER.size + length:]
                if kind == FRAME_LINE:
                    yield payload.decode("utf-8", "replace")
                # Binary frame kinds (jobs, store transfers) never
                # arrive on a plain client connection; skip defensively.
            chunk = self.sock.recv(65536)
            if not chunk:
                return
            buffer += chunk


def parse(line):
    try:
        return json.loads(line)
    except ValueError:
        return {"type": "garbage", "line": line}


def table_row(msg):
    """Deterministic row for one finished job (no timing fields)."""
    label = msg.get("label", "?")
    if msg.get("failed"):
        return "%s\tFAILED\t%s" % (label, msg.get("error", ""))
    return "%s\t%.17g\tok" % (label, msg.get("value", 0.0))


def shard_status_line(msg):
    """Human-readable rendering of a shard / shard-event message."""
    if msg.get("type") == "shard-event":
        parts = ["shard-event", msg.get("event", "?")]
        if msg.get("host"):
            parts.append(msg["host"])
        if "ordinal" in msg:
            parts.append("ordinal=%d" % msg["ordinal"])
        if msg.get("detail"):
            parts.append("(%s)" % msg["detail"])
        return " ".join(parts)
    hosts = " | ".join(
        "%s%s inflight=%d done=%d" % (
            h.get("endpoint", "?"),
            "" if h.get("alive") else " DEAD",
            h.get("inflight", 0), h.get("done", 0))
        for h in msg.get("hosts", []))
    return "shard %d/%d pending=%d: %s" % (
        msg.get("completed", 0), msg.get("total", 0),
        msg.get("pending", 0), hosts)


def run_sweep(transport, script, table, raw_log, shard_status):
    transport.send_request(script.read())
    # Half-close so a daemon waiting for more commands sees EOF once
    # the response stream completes; responses still flow back.
    transport.half_close()

    status = 0
    saw_done = False
    in_run = False
    rows = []
    for line in transport.lines():
        msg = parse(line)
        kind = msg.get("type")
        if kind == "error":
            status = max(status, 2)
        elif kind == "start":
            in_run = True
            saw_done = False
        elif kind == "job":
            rows.append(table_row(msg))
        elif kind == "done":
            in_run = False
            saw_done = True
        if shard_status and kind in ("shard", "shard-event"):
            print(shard_status_line(msg), file=sys.stderr, flush=True)
        if raw_log:
            raw_log.write(line + "\n")
            raw_log.flush()
        if not table:
            # Flush per line: watchers (CI kill-timing loops, humans
            # tailing the stream) must see jobs as they finish, not
            # when the block buffer happens to fill.
            print(line, flush=True)
    if table:
        for row in rows:
            print(row)
    if in_run and not saw_done:
        print("bfsimd_client: response stream ended mid-sweep",
              file=sys.stderr)
        return 3
    return status


def simple_command(transport, command, expect):
    transport.send_request(command + "\n")
    for line in transport.lines():
        msg = parse(line)
        if msg.get("type") == "hello":
            continue
        print(line)
        return 0 if msg.get("type") == expect else 2
    print("bfsimd_client: no response to %s" % command,
          file=sys.stderr)
    return 3


def main():
    parser = argparse.ArgumentParser(
        description="client for the bfsimd sweep daemon")
    parser.add_argument("--socket", default=None,
                        help="Unix socket path the daemon listens on")
    parser.add_argument("--host", default=None, metavar="HOST:PORT",
                        help="TCP endpoint of a daemon started with "
                             "--listen (framed transport)")
    parser.add_argument("--script", default="-",
                        help="request-line file ('-' = stdin)")
    parser.add_argument("--table", action="store_true",
                        help="print only deterministic per-job rows")
    parser.add_argument("--shard-status", action="store_true",
                        help="render coordinator shard progress lines "
                             "to stderr as they arrive")
    parser.add_argument("--raw-log", default=None, metavar="FILE",
                        help="also write the raw JSON response stream "
                             "to FILE (useful with --table)")
    parser.add_argument("--connect-timeout", type=float, default=10.0,
                        help="seconds to keep retrying the connect")
    parser.add_argument("command", nargs="?", default="sweep",
                        choices=["sweep", "ping", "shutdown"])
    args = parser.parse_args()

    if bool(args.socket) == bool(args.host):
        parser.error("exactly one of --socket and --host is required")
    if args.host:
        host, _, port = args.host.rpartition(":")
        if not host or not port.isdigit():
            parser.error("--host expects HOST:PORT")
        sock = connect((host, int(port)), args.connect_timeout)
        transport = FramedTransport(sock)
    else:
        sock = connect(args.socket, args.connect_timeout)
        transport = TextTransport(sock)

    try:
        if args.command == "ping":
            return simple_command(transport, "ping", "pong")
        if args.command == "shutdown":
            return simple_command(transport, "shutdown", "bye")
        raw_log = (open(args.raw_log, "w", encoding="utf-8")
                   if args.raw_log else None)
        try:
            if args.script == "-":
                return run_sweep(transport, sys.stdin, args.table,
                                 raw_log, args.shard_status)
            with open(args.script, "r", encoding="utf-8") as script:
                return run_sweep(transport, script, args.table,
                                 raw_log, args.shard_status)
        finally:
            if raw_log:
                raw_log.close()
    finally:
        sock.close()


if __name__ == "__main__":
    sys.exit(main())
