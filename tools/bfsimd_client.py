#!/usr/bin/env python3
"""Client for the bfsimd sweep daemon (src/service/).

Speaks the line protocol of service/protocol.hh over a Unix-domain
socket using only the Python standard library. Three modes:

  bfsimd_client.py --socket PATH ping
  bfsimd_client.py --socket PATH shutdown
  bfsimd_client.py --socket PATH [--script FILE] [--table]

The default (sweep) mode reads request lines from --script (or stdin),
sends them verbatim, and streams the daemon's JSON-line responses to
stdout. With --table the stream is reduced to one deterministic row
per job -- label, headline value, status -- with every timing and
provenance field (seconds, cached, journaled) dropped, so CI can
byte-compare the table of an interrupted-and-resumed sweep against an
uninterrupted one.

Exit status: 0 on a complete response stream, 1 on usage/connect
errors, 2 when the daemon answered any line with a protocol error,
3 when the stream ended mid-sweep (daemon death -- the journal makes a
re-submit cheap).
"""

import argparse
import json
import socket
import sys
import time


def connect(path, timeout):
    """Connect with bounded retry so a just-spawned daemon can bind."""
    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError as error:
            sock.close()
            if time.monotonic() >= deadline:
                raise SystemExit(
                    "bfsimd_client: cannot connect to %s: %s"
                    % (path, error))
            time.sleep(delay)
            delay = min(delay * 2, 0.5)


def recv_lines(sock):
    """Yield decoded response lines until EOF."""
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            yield line.decode("utf-8", "replace")


def parse(line):
    try:
        return json.loads(line)
    except ValueError:
        return {"type": "garbage", "line": line}


def table_row(msg):
    """Deterministic row for one finished job (no timing fields)."""
    label = msg.get("label", "?")
    if msg.get("failed"):
        return "%s\tFAILED\t%s" % (label, msg.get("error", ""))
    return "%s\t%.17g\tok" % (label, msg.get("value", 0.0))


def run_sweep(sock, script, table, raw_log):
    request = script.read()
    sock.sendall(request.encode("utf-8"))
    # Half-close so a daemon waiting for more commands sees EOF once
    # the response stream completes; responses still flow back.
    sock.shutdown(socket.SHUT_WR)

    status = 0
    saw_done = False
    in_run = False
    rows = []
    for line in recv_lines(sock):
        msg = parse(line)
        kind = msg.get("type")
        if kind == "error":
            status = max(status, 2)
        elif kind == "start":
            in_run = True
            saw_done = False
        elif kind == "job":
            rows.append(table_row(msg))
        elif kind == "done":
            in_run = False
            saw_done = True
        if raw_log:
            raw_log.write(line + "\n")
            raw_log.flush()
        if not table:
            # Flush per line: watchers (CI kill-timing loops, humans
            # tailing the stream) must see jobs as they finish, not
            # when the block buffer happens to fill.
            print(line, flush=True)
    if table:
        for row in rows:
            print(row)
    if in_run and not saw_done:
        print("bfsimd_client: response stream ended mid-sweep",
              file=sys.stderr)
        return 3
    return status


def simple_command(sock, command, expect):
    sock.sendall((command + "\n").encode("utf-8"))
    for line in recv_lines(sock):
        msg = parse(line)
        if msg.get("type") == "hello":
            continue
        print(line)
        return 0 if msg.get("type") == expect else 2
    print("bfsimd_client: no response to %s" % command,
          file=sys.stderr)
    return 3


def main():
    parser = argparse.ArgumentParser(
        description="client for the bfsimd sweep daemon")
    parser.add_argument("--socket", required=True,
                        help="Unix socket path the daemon listens on")
    parser.add_argument("--script", default="-",
                        help="request-line file ('-' = stdin)")
    parser.add_argument("--table", action="store_true",
                        help="print only deterministic per-job rows")
    parser.add_argument("--raw-log", default=None, metavar="FILE",
                        help="also write the raw JSON response stream "
                             "to FILE (useful with --table)")
    parser.add_argument("--connect-timeout", type=float, default=10.0,
                        help="seconds to keep retrying the connect")
    parser.add_argument("command", nargs="?", default="sweep",
                        choices=["sweep", "ping", "shutdown"])
    args = parser.parse_args()

    sock = connect(args.socket, args.connect_timeout)
    try:
        if args.command == "ping":
            return simple_command(sock, "ping", "pong")
        if args.command == "shutdown":
            return simple_command(sock, "shutdown", "bye")
        raw_log = (open(args.raw_log, "w", encoding="utf-8")
                   if args.raw_log else None)
        try:
            if args.script == "-":
                return run_sweep(sock, sys.stdin, args.table, raw_log)
            with open(args.script, "r", encoding="utf-8") as script:
                return run_sweep(sock, script, args.table, raw_log)
        finally:
            if raw_log:
                raw_log.close()
    finally:
        sock.close()


if __name__ == "__main__":
    sys.exit(main())
