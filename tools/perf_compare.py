#!/usr/bin/env python3
"""Compare two BENCH_perf*.json simulator-throughput reports.

Matches jobs by label between a baseline report and a candidate report
(both produced by the bench binaries' --perf-report flag / CI perf-smoke
step), prints per-job and aggregate MIPS deltas, and — when gating is
requested — fails if the candidate regresses aggregate MIPS by more
than the threshold.

Two additional gates serve the sampled-vs-full accuracy check:
--min-speedup requires the candidate to spend at most 1/N of the
baseline's simulation seconds over the shared jobs (e.g. a sampled run
must be >= 10x faster than the full run it approximates), and
--max-ipc-delta-pct bounds the worst per-job |IPC| deviation between
the two reports (the sampling error gate).

A fourth gate serves the process-isolation overhead check:
--max-wall-delta-pct bounds how much the candidate's whole-batch
wall_seconds may exceed the baseline's (e.g. CI asserts that
--isolate=process costs < 10% wall clock over the in-process backend
on an otherwise identical sweep).

Usage:
    tools/perf_compare.py BASELINE.json CANDIDATE.json \
        [--threshold-pct 15] [--gate] \
        [--min-speedup 10] [--max-ipc-delta-pct 1] \
        [--max-wall-delta-pct 10]

Exit codes:
    0  comparison printed; no gated violation
    1  gated violation: MIPS regression, speedup shortfall, or IPC error
    2  bad input (missing file, unparsable JSON, no comparable jobs, or
       an accuracy gate requested with no comparable data)

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_report(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"perf_compare: cannot read '{path}': {error}",
              file=sys.stderr)
        raise SystemExit(2)
    if "jobs" not in report or "mips" not in report:
        print(f"perf_compare: '{path}' is not a perf report "
              "(missing 'jobs'/'mips')", file=sys.stderr)
        raise SystemExit(2)
    return report


def pct_delta(base: float, cand: float) -> float:
    """Percent change from base to cand; +10 means 10% faster."""
    if base <= 0:
        return 0.0
    return (cand - base) / base * 100.0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_perf*.json throughput reports")
    parser.add_argument("baseline", help="baseline perf report (JSON)")
    parser.add_argument("candidate", help="candidate perf report (JSON)")
    parser.add_argument(
        "--threshold-pct", type=float, default=15.0,
        help="regression threshold in percent (default: 15)")
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 when aggregate MIPS regresses beyond the threshold "
             "(default: report only, always exit 0)")
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="require sum(base sim_seconds)/sum(cand sim_seconds) over "
             "shared jobs >= X (exit 1 otherwise); used to gate that a "
             "sampled run actually undercuts the full run it replaces")
    parser.add_argument(
        "--max-ipc-delta-pct", type=float, default=None, metavar="PCT",
        help="require every shared job's |IPC delta| <= PCT percent "
             "(exit 1 otherwise); the sampled-vs-full error gate")
    parser.add_argument(
        "--max-wall-delta-pct", type=float, default=None, metavar="PCT",
        help="require candidate wall_seconds <= baseline wall_seconds "
             "* (1 + PCT/100) (exit 1 otherwise); the process-isolation "
             "overhead gate")
    args = parser.parse_args()

    base = load_report(args.baseline)
    cand = load_report(args.candidate)

    base_jobs = {job["label"]: job for job in base.get("jobs", [])}
    cand_jobs = {job["label"]: job for job in cand.get("jobs", [])}
    shared = [label for label in base_jobs if label in cand_jobs]
    only_base = sorted(set(base_jobs) - set(cand_jobs))
    only_cand = sorted(set(cand_jobs) - set(base_jobs))

    print(f"perf compare: {args.baseline} -> {args.candidate}")
    print(f"  bench: {base.get('bench', '?')} -> "
          f"{cand.get('bench', '?')}, "
          f"batch_ops: {base.get('batch_ops')} -> "
          f"{cand.get('batch_ops')}, "
          f"threads: {base.get('threads')} -> {cand.get('threads')}")

    if shared:
        width = max(len(label) for label in shared)
        print(f"  {'job'.ljust(width)}  base MIPS   cand MIPS     delta")
        for label in shared:
            b, c = base_jobs[label], cand_jobs[label]
            delta = pct_delta(b.get("mips", 0.0), c.get("mips", 0.0))
            print(f"  {label.ljust(width)}  "
                  f"{b.get('mips', 0.0):9.3f}   "
                  f"{c.get('mips', 0.0):9.3f}   "
                  f"{delta:+7.1f}%")
    for label in only_base:
        print(f"  {label}: only in baseline")
    for label in only_cand:
        print(f"  {label}: only in candidate")

    base_mips = float(base.get("mips", 0.0))
    cand_mips = float(cand.get("mips", 0.0))
    agg_delta = pct_delta(base_mips, cand_mips)
    print(f"  aggregate: {base_mips:.3f} -> {cand_mips:.3f} MIPS "
          f"({agg_delta:+.1f}%), threshold -{args.threshold_pct:.1f}%")

    if not shared and not (base_mips > 0 and cand_mips > 0):
        print("perf_compare: no comparable jobs or aggregate numbers",
              file=sys.stderr)
        return 2

    failed = False

    if args.min_speedup is not None:
        base_seconds = sum(base_jobs[l].get("sim_seconds", 0.0)
                           for l in shared)
        cand_seconds = sum(cand_jobs[l].get("sim_seconds", 0.0)
                           for l in shared)
        if not shared or base_seconds <= 0 or cand_seconds <= 0:
            print("perf_compare: --min-speedup needs shared jobs with "
                  "sim_seconds on both sides", file=sys.stderr)
            return 2
        speedup = base_seconds / cand_seconds
        print(f"  speedup: {base_seconds:.3f}s -> {cand_seconds:.3f}s "
              f"= {speedup:.1f}x, required >= {args.min_speedup:.1f}x")
        if speedup < args.min_speedup:
            print(f"perf_compare: SPEEDUP SHORTFALL: {speedup:.1f}x < "
                  f"{args.min_speedup:.1f}x", file=sys.stderr)
            failed = True

    if args.max_ipc_delta_pct is not None:
        comparable = [l for l in shared
                      if base_jobs[l].get("ipc", 0.0) > 0
                      and "ipc" in cand_jobs[l]]
        if not comparable:
            print("perf_compare: --max-ipc-delta-pct needs shared jobs "
                  "with ipc on both sides", file=sys.stderr)
            return 2
        worst_label = max(
            comparable,
            key=lambda l: abs(pct_delta(base_jobs[l]["ipc"],
                                        cand_jobs[l]["ipc"])))
        worst = abs(pct_delta(base_jobs[worst_label]["ipc"],
                              cand_jobs[worst_label]["ipc"]))
        print(f"  ipc error: worst {worst:.3f}% ({worst_label}), "
              f"allowed {args.max_ipc_delta_pct:.3f}%")
        if worst > args.max_ipc_delta_pct:
            print(f"perf_compare: IPC ERROR beyond "
                  f"{args.max_ipc_delta_pct:.3f}%: {worst:.3f}% on "
                  f"{worst_label}", file=sys.stderr)
            failed = True

    if args.max_wall_delta_pct is not None:
        base_wall = float(base.get("wall_seconds", 0.0))
        cand_wall = float(cand.get("wall_seconds", 0.0))
        if base_wall <= 0 or cand_wall <= 0:
            print("perf_compare: --max-wall-delta-pct needs "
                  "wall_seconds on both sides", file=sys.stderr)
            return 2
        wall_delta = pct_delta(base_wall, cand_wall)
        print(f"  wall: {base_wall:.3f}s -> {cand_wall:.3f}s "
              f"({wall_delta:+.1f}%), allowed "
              f"+{args.max_wall_delta_pct:.1f}%")
        if wall_delta > args.max_wall_delta_pct:
            print(f"perf_compare: WALL-CLOCK OVERHEAD beyond "
                  f"+{args.max_wall_delta_pct:.1f}%: {wall_delta:+.1f}%",
                  file=sys.stderr)
            failed = True

    if args.gate and agg_delta < -args.threshold_pct:
        print(f"perf_compare: REGRESSION beyond "
              f"{args.threshold_pct:.1f}% threshold", file=sys.stderr)
        failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
