#!/usr/bin/env python3
"""Compare two BENCH_perf*.json simulator-throughput reports.

Matches jobs by label between a baseline report and a candidate report
(both produced by the bench binaries' --perf-out flag / CI perf-smoke
step), prints per-job and aggregate MIPS deltas, and — when gating is
requested — fails if the candidate regresses aggregate MIPS by more
than the threshold.

Usage:
    tools/perf_compare.py BASELINE.json CANDIDATE.json \
        [--threshold-pct 15] [--gate]

Exit codes:
    0  comparison printed; no gated regression
    1  gated regression: aggregate MIPS dropped more than threshold
    2  bad input (missing file, unparsable JSON, no comparable jobs)

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_report(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"perf_compare: cannot read '{path}': {error}",
              file=sys.stderr)
        raise SystemExit(2)
    if "jobs" not in report or "mips" not in report:
        print(f"perf_compare: '{path}' is not a perf report "
              "(missing 'jobs'/'mips')", file=sys.stderr)
        raise SystemExit(2)
    return report


def pct_delta(base: float, cand: float) -> float:
    """Percent change from base to cand; +10 means 10% faster."""
    if base <= 0:
        return 0.0
    return (cand - base) / base * 100.0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_perf*.json throughput reports")
    parser.add_argument("baseline", help="baseline perf report (JSON)")
    parser.add_argument("candidate", help="candidate perf report (JSON)")
    parser.add_argument(
        "--threshold-pct", type=float, default=15.0,
        help="regression threshold in percent (default: 15)")
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 when aggregate MIPS regresses beyond the threshold "
             "(default: report only, always exit 0)")
    args = parser.parse_args()

    base = load_report(args.baseline)
    cand = load_report(args.candidate)

    base_jobs = {job["label"]: job for job in base.get("jobs", [])}
    cand_jobs = {job["label"]: job for job in cand.get("jobs", [])}
    shared = [label for label in base_jobs if label in cand_jobs]
    only_base = sorted(set(base_jobs) - set(cand_jobs))
    only_cand = sorted(set(cand_jobs) - set(base_jobs))

    print(f"perf compare: {args.baseline} -> {args.candidate}")
    print(f"  bench: {base.get('bench', '?')} -> "
          f"{cand.get('bench', '?')}, "
          f"batch_ops: {base.get('batch_ops')} -> "
          f"{cand.get('batch_ops')}, "
          f"threads: {base.get('threads')} -> {cand.get('threads')}")

    if shared:
        width = max(len(label) for label in shared)
        print(f"  {'job'.ljust(width)}  base MIPS   cand MIPS     delta")
        for label in shared:
            b, c = base_jobs[label], cand_jobs[label]
            delta = pct_delta(b.get("mips", 0.0), c.get("mips", 0.0))
            print(f"  {label.ljust(width)}  "
                  f"{b.get('mips', 0.0):9.3f}   "
                  f"{c.get('mips', 0.0):9.3f}   "
                  f"{delta:+7.1f}%")
    for label in only_base:
        print(f"  {label}: only in baseline")
    for label in only_cand:
        print(f"  {label}: only in candidate")

    base_mips = float(base.get("mips", 0.0))
    cand_mips = float(cand.get("mips", 0.0))
    agg_delta = pct_delta(base_mips, cand_mips)
    print(f"  aggregate: {base_mips:.3f} -> {cand_mips:.3f} MIPS "
          f"({agg_delta:+.1f}%), threshold -{args.threshold_pct:.1f}%")

    if not shared and not (base_mips > 0 and cand_mips > 0):
        print("perf_compare: no comparable jobs or aggregate numbers",
              file=sys.stderr)
        return 2

    if args.gate and agg_delta < -args.threshold_pct:
        print(f"perf_compare: REGRESSION beyond "
              f"{args.threshold_pct:.1f}% threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
