#!/usr/bin/env python3
"""Self-test for perf_compare.py: synthetic report pairs through every
exit path, so the CI gate's own gatekeeper is itself tested.

Covers: clean pass, gated MIPS regression, ungated regression (report
only), missing-key inputs, disjoint job sets, the --min-speedup pass /
shortfall / no-data paths, the --max-ipc-delta-pct pass / violation /
no-data paths, and the --max-wall-delta-pct pass / violation / no-data
paths (the process-isolation overhead gate).

Registered in ctest (perf_compare_selftest); also runnable directly:
    python3 tools/perf_compare_selftest.py

Stdlib only; exit 0 when every case behaves, 1 otherwise.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

COMPARE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "perf_compare.py")


def report(mips: float, jobs: list[dict],
           wall_seconds: float = 1.0) -> dict:
    return {
        "bench": "selftest",
        "batch_ops": True,
        "threads": 1,
        "wall_seconds": wall_seconds,
        "sim_instructions": sum(j.get("sim_instructions", 0)
                                for j in jobs),
        "sim_seconds": sum(j.get("sim_seconds", 0.0) for j in jobs),
        "mips": mips,
        "jobs": jobs,
    }


def job(label: str, mips: float, seconds: float = 1.0,
        ipc: float | None = None) -> dict:
    j = {
        "label": label,
        "sim_instructions": int(mips * seconds * 1e6),
        "sim_seconds": seconds,
        "mips": mips,
    }
    if ipc is not None:
        j["ipc"] = ipc
    return j


def run_case(name: str, base: dict | str, cand: dict | str,
             args: list[str], expect: int, failures: list[str]) -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        cand_path = os.path.join(tmp, "cand.json")
        for path, content in ((base_path, base), (cand_path, cand)):
            with open(path, "w", encoding="utf-8") as handle:
                if isinstance(content, str):
                    handle.write(content)
                else:
                    json.dump(content, handle)
        proc = subprocess.run(
            [sys.executable, COMPARE, base_path, cand_path] + args,
            capture_output=True, text=True)
    status = "ok" if proc.returncode == expect else "FAIL"
    print(f"  [{status}] {name}: exit {proc.returncode} "
          f"(expected {expect})")
    if proc.returncode != expect:
        failures.append(name)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)


def main() -> int:
    failures: list[str] = []
    base = report(10.0, [job("a", 10.0, ipc=0.500),
                         job("b", 10.0, ipc=1.000)])

    # --- aggregate MIPS gate ------------------------------------------
    run_case("identical reports pass gated",
             base, base, ["--gate"], 0, failures)
    regressed = report(5.0, [job("a", 5.0, ipc=0.500),
                             job("b", 5.0, ipc=1.000)])
    run_case("major regression fails gated",
             base, regressed, ["--gate", "--threshold-pct", "15"], 1,
             failures)
    run_case("major regression passes ungated (report only)",
             base, regressed, [], 0, failures)
    run_case("small regression passes within threshold",
             base, report(9.0, [job("a", 9.0), job("b", 9.0)]),
             ["--gate", "--threshold-pct", "15"], 0, failures)

    # --- malformed / incomparable inputs ------------------------------
    run_case("missing 'mips' key rejected",
             {"jobs": []}, base, [], 2, failures)
    run_case("missing 'jobs' key rejected",
             {"mips": 1.0}, base, [], 2, failures)
    run_case("unparsable JSON rejected",
             "{not json", base, [], 2, failures)
    no_overlap = report(0.0, [job("zzz", 0.0)])
    run_case("disjoint jobs with zero aggregates rejected",
             no_overlap, report(0.0, [job("yyy", 0.0)]), [], 2,
             failures)

    # --- --min-speedup ------------------------------------------------
    fast = report(10.0, [job("a", 10.0, seconds=0.05, ipc=0.500),
                         job("b", 10.0, seconds=0.05, ipc=1.000)])
    run_case("20x faster candidate passes --min-speedup 10",
             base, fast, ["--min-speedup", "10"], 0, failures)
    run_case("equal-time candidate fails --min-speedup 10",
             base, base, ["--min-speedup", "10"], 1, failures)
    run_case("--min-speedup without shared jobs is no-data",
             base, report(1.0, [job("zzz", 1.0)]),
             ["--min-speedup", "10"], 2, failures)

    # --- --max-ipc-delta-pct ------------------------------------------
    close = report(10.0, [job("a", 10.0, seconds=0.05, ipc=0.5004),
                          job("b", 10.0, seconds=0.05, ipc=0.9992)])
    run_case("0.08% ipc error passes --max-ipc-delta-pct 1",
             base, close, ["--max-ipc-delta-pct", "1"], 0, failures)
    off = report(10.0, [job("a", 10.0, ipc=0.520),
                        job("b", 10.0, ipc=1.000)])
    run_case("4% ipc error fails --max-ipc-delta-pct 1",
             base, off, ["--max-ipc-delta-pct", "1"], 1, failures)
    no_ipc = report(10.0, [job("a", 10.0), job("b", 10.0)])
    run_case("--max-ipc-delta-pct without ipc fields is no-data",
             base, no_ipc, ["--max-ipc-delta-pct", "1"], 2, failures)

    # --- --max-wall-delta-pct -----------------------------------------
    isolated = report(10.0, [job("a", 10.0, ipc=0.500),
                             job("b", 10.0, ipc=1.000)],
                      wall_seconds=1.05)
    run_case("5% wall overhead passes --max-wall-delta-pct 10",
             base, isolated, ["--max-wall-delta-pct", "10"], 0,
             failures)
    slow_wall = report(10.0, [job("a", 10.0, ipc=0.500),
                              job("b", 10.0, ipc=1.000)],
                       wall_seconds=1.25)
    run_case("25% wall overhead fails --max-wall-delta-pct 10",
             base, slow_wall, ["--max-wall-delta-pct", "10"], 1,
             failures)
    no_wall = report(10.0, [job("a", 10.0), job("b", 10.0)],
                     wall_seconds=0.0)
    run_case("--max-wall-delta-pct without wall_seconds is no-data",
             base, no_wall, ["--max-wall-delta-pct", "10"], 2,
             failures)

    # --- combined gates -----------------------------------------------
    run_case("fast+accurate candidate passes combined gates",
             base, fast,
             ["--gate", "--min-speedup", "10",
              "--max-ipc-delta-pct", "1"], 0, failures)
    slow_accurate = report(
        10.0, [job("a", 10.0, seconds=0.5, ipc=0.500),
               job("b", 10.0, seconds=0.5, ipc=1.000)])
    run_case("accurate but slow candidate fails combined gates",
             base, slow_accurate,
             ["--gate", "--min-speedup", "10",
              "--max-ipc-delta-pct", "1"], 1, failures)

    if failures:
        print(f"perf_compare_selftest: {len(failures)} case(s) FAILED: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("perf_compare_selftest: all cases passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
